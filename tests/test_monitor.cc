/** @file Tests for the resurrector's security monitor and its three
 * inspectors (Section 3.2, Table 2). */

#include <gtest/gtest.h>

#include "monitor/monitor.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

using namespace indra;
using mon::Monitor;
using mon::Violation;

namespace
{

cpu::TraceRecord
record(cpu::TraceKind kind, Pid pid = 1)
{
    cpu::TraceRecord r;
    r.kind = kind;
    r.pid = pid;
    return r;
}

class MonitorTest : public ::testing::Test
{
  protected:
    MonitorTest() : stats("t"), monitor(cfg, stats)
    {
        monitor.registerCodePage(1, 0x00400000);
        monitor.registerCodePage(1, 0x00401000);
        monitor.registerFunctionEntry(1, 0x00400200);
        monitor.registerLibraryEntry(1, 0x00401800);
    }

    SystemConfig cfg;
    stats::StatGroup stats;
    Monitor monitor;
};

} // anonymous namespace

// ------------------------------------------------------- code origin

TEST_F(MonitorTest, RegisteredCodePagePasses)
{
    auto r = record(cpu::TraceKind::CodeOrigin);
    r.target = 0x00400000;
    r.pc = 0x00400040;
    monitor.submit(r, 0);
    EXPECT_FALSE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, StackPageFetchDetected)
{
    auto r = record(cpu::TraceKind::CodeOrigin);
    r.target = 0x7ffe0000;  // stack page: never registered
    r.pc = 0x7ffe0100;
    monitor.submit(r, 0);
    ASSERT_TRUE(monitor.pendingDetection().has_value());
    EXPECT_EQ(monitor.pendingDetection()->violation,
              Violation::InjectedCode);
}

TEST_F(MonitorTest, DynCodeRegionPasses)
{
    monitor.registerDynCodeRegion(1, 0x30000000, 8192);
    auto r = record(cpu::TraceKind::CodeOrigin);
    r.target = 0x30000000;
    r.pc = 0x30000400;
    monitor.submit(r, 0);
    EXPECT_FALSE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, OtherProcessPagesDontLeak)
{
    auto r = record(cpu::TraceKind::CodeOrigin, 2);
    r.target = 0x00400000;  // registered for pid 1 only
    monitor.submit(r, 0);
    EXPECT_TRUE(monitor.pendingDetection().has_value());
}

// ------------------------------------------------------- call/return

TEST_F(MonitorTest, MatchedCallReturnPasses)
{
    auto call = record(cpu::TraceKind::Call);
    call.pc = 0x00400100;
    call.target = 0x00400200;
    call.retAddr = 0x00400104;
    monitor.submit(call, 0);

    auto ret = record(cpu::TraceKind::Return);
    ret.pc = 0x00400280;
    ret.target = 0x00400104;
    monitor.submit(ret, 0);
    EXPECT_FALSE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, SmashedReturnDetected)
{
    auto call = record(cpu::TraceKind::Call);
    call.retAddr = 0x00400104;
    monitor.submit(call, 0);

    auto ret = record(cpu::TraceKind::Return);
    ret.target = 0x7ffe0200;  // hijacked
    monitor.submit(ret, 0);
    ASSERT_TRUE(monitor.pendingDetection().has_value());
    EXPECT_EQ(monitor.pendingDetection()->violation,
              Violation::StackSmash);
}

TEST_F(MonitorTest, ReturnWithoutCallDetected)
{
    auto ret = record(cpu::TraceKind::Return);
    ret.target = 0x00400104;
    monitor.submit(ret, 0);
    EXPECT_TRUE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, NestedCallsUnwindInOrder)
{
    for (Addr pc : {0x100, 0x200, 0x300}) {
        auto call = record(cpu::TraceKind::Call);
        call.pc = 0x00400000 + pc;
        call.retAddr = 0x00400000 + pc + 4;
        monitor.submit(call, 0);
    }
    for (Addr pc : {0x304, 0x204, 0x104}) {
        auto ret = record(cpu::TraceKind::Return);
        ret.target = 0x00400000 + pc;
        monitor.submit(ret, 0);
        EXPECT_FALSE(monitor.pendingDetection().has_value());
    }
}

TEST_F(MonitorTest, SetjmpLongjmpUnwindsShadowStack)
{
    auto sj = record(cpu::TraceKind::Setjmp);
    sj.env = 1;
    sj.target = 0x00400108;  // resume pc
    monitor.submit(sj, 0);

    // Two nested calls after setjmp.
    auto c1 = record(cpu::TraceKind::Call);
    c1.retAddr = 0x00400204;
    monitor.submit(c1, 0);
    auto c2 = record(cpu::TraceKind::Call);
    c2.retAddr = 0x00400304;
    monitor.submit(c2, 0);

    // longjmp back to the env: valid, and unwinds both frames.
    auto lj = record(cpu::TraceKind::Longjmp);
    lj.env = 1;
    lj.target = 0x00400108;
    monitor.submit(lj, 0);
    EXPECT_FALSE(monitor.pendingDetection().has_value());
    EXPECT_EQ(monitor.callReturn().depth(1), 0u);
}

TEST_F(MonitorTest, LongjmpToWrongTargetDetected)
{
    auto sj = record(cpu::TraceKind::Setjmp);
    sj.env = 1;
    sj.target = 0x00400108;
    monitor.submit(sj, 0);

    auto lj = record(cpu::TraceKind::Longjmp);
    lj.env = 1;
    lj.target = 0x7ffe0000;  // forged
    monitor.submit(lj, 0);
    ASSERT_TRUE(monitor.pendingDetection().has_value());
    EXPECT_EQ(monitor.pendingDetection()->violation,
              Violation::BadLongjmp);
}

TEST_F(MonitorTest, LongjmpToUnregisteredEnvDetected)
{
    auto lj = record(cpu::TraceKind::Longjmp);
    lj.env = 42;
    lj.target = 0x00400108;
    monitor.submit(lj, 0);
    EXPECT_TRUE(monitor.pendingDetection().has_value());
}

// -------------------------------------------------- control transfer

TEST_F(MonitorTest, IndirectCallToFunctionEntryPasses)
{
    auto x = record(cpu::TraceKind::CtrlTransfer);
    x.target = 0x00400200;
    monitor.submit(x, 0);
    EXPECT_FALSE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, IndirectCallToLibraryEntryPasses)
{
    auto x = record(cpu::TraceKind::CtrlTransfer);
    x.target = 0x00401800;
    monitor.submit(x, 0);
    EXPECT_FALSE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, IndirectCallIntoFunctionBodyDetected)
{
    auto x = record(cpu::TraceKind::CtrlTransfer);
    x.target = 0x00400208;  // mid-function, not an entry
    monitor.submit(x, 0);
    ASSERT_TRUE(monitor.pendingDetection().has_value());
    EXPECT_EQ(monitor.pendingDetection()->violation,
              Violation::IllegalTransfer);
}

TEST_F(MonitorTest, IndirectCallToDataDetected)
{
    auto x = record(cpu::TraceKind::CtrlTransfer);
    x.target = 0x10000800;
    monitor.submit(x, 0);
    EXPECT_TRUE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, DynCodeRegionIsLegalTransferTarget)
{
    monitor.registerDynCodeRegion(1, 0x30000000, 4096);
    auto x = record(cpu::TraceKind::CtrlTransfer);
    x.target = 0x30000040;
    monitor.submit(x, 0);
    EXPECT_FALSE(monitor.pendingDetection().has_value());
}

// ----------------------------------------------------- monitor logic

TEST_F(MonitorTest, FirstDetectionIsKept)
{
    auto bad1 = record(cpu::TraceKind::CtrlTransfer);
    bad1.target = 0x10000800;
    bad1.pc = 0x1;
    monitor.submit(bad1, 0);
    auto bad2 = record(cpu::TraceKind::CtrlTransfer);
    bad2.target = 0x10000900;
    bad2.pc = 0x2;
    monitor.submit(bad2, 0);
    ASSERT_TRUE(monitor.pendingDetection().has_value());
    EXPECT_EQ(monitor.pendingDetection()->record.pc, 0x1u);
    EXPECT_EQ(monitor.violationsDetected(), 2u);
}

TEST_F(MonitorTest, DetectionTickIsServiceEnd)
{
    auto bad = record(cpu::TraceKind::CtrlTransfer);
    bad.target = 0x10000800;
    monitor.submit(bad, 1000);
    ASSERT_TRUE(monitor.pendingDetection().has_value());
    EXPECT_EQ(monitor.pendingDetection()->detectTick,
              1000 + cfg.recordDequeueCycles +
                  cfg.ctrlTransferCheckCycles);
}

TEST_F(MonitorTest, ClearDetectionResets)
{
    auto bad = record(cpu::TraceKind::CtrlTransfer);
    bad.target = 0x10000800;
    monitor.submit(bad, 0);
    monitor.clearDetection();
    EXPECT_FALSE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, OnRecoveryResetsShadowStack)
{
    auto call = record(cpu::TraceKind::Call);
    call.retAddr = 0x00400104;
    monitor.submit(call, 0);
    EXPECT_EQ(monitor.callReturn().depth(1), 1u);
    monitor.onRecovery(1);
    EXPECT_EQ(monitor.callReturn().depth(1), 0u);
}

TEST_F(MonitorTest, SubmitReturnsBackpressuredTick)
{
    // Saturate a tiny FIFO and verify push-done ticks move out.
    SystemConfig small = cfg;
    small.traceFifoEntries = 2;
    stats::StatGroup g2("t2");
    Monitor m2(small, g2);
    Tick done = 0;
    for (int i = 0; i < 16; ++i) {
        auto r = record(cpu::TraceKind::CodeOrigin);
        r.target = 0x00400000;
        done = m2.submit(r, 0);
    }
    EXPECT_GT(done, 0u);
}

TEST_F(MonitorTest, DrainTickAdvancesWithWork)
{
    EXPECT_EQ(monitor.drainTick(), 0u);
    auto r = record(cpu::TraceKind::CodeOrigin);
    r.target = 0x00400000;
    monitor.submit(r, 100);
    EXPECT_EQ(monitor.drainTick(),
              100 + cfg.recordDequeueCycles +
                  cfg.codeOriginCheckCycles);
}

TEST_F(MonitorTest, ForgetProcessDropsMetadata)
{
    monitor.forgetProcess(1);
    auto r = record(cpu::TraceKind::CodeOrigin);
    r.target = 0x00400000;
    monitor.submit(r, 0);
    EXPECT_TRUE(monitor.pendingDetection().has_value());
}

TEST_F(MonitorTest, RecordAndCheckCountsTracked)
{
    auto co = record(cpu::TraceKind::CodeOrigin);
    co.target = 0x00400000;
    monitor.submit(co, 0);
    auto call = record(cpu::TraceKind::Call);
    call.retAddr = 0x4;
    monitor.submit(call, 0);
    EXPECT_EQ(monitor.recordsProcessed(), 2u);
}
