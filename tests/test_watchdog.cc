/** @file Tests for the INDRA memory watchdog (Section 2.3.1). */

#include <gtest/gtest.h>

#include "mem/watchdog.hh"
#include "sim/stats.hh"

using namespace indra;
using mem::MemWatchdog;
using mem::WatchdogVerdict;

TEST(Watchdog, HighPrivilegeAlwaysAllowed)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    EXPECT_EQ(wd.check(0, Privilege::High, 123),
              WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.denials(), 0u);
}

TEST(Watchdog, UngrantedFrameIsPrivate)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    EXPECT_EQ(wd.check(1, Privilege::Low, 42),
              WatchdogVerdict::DeniedPrivate);
    EXPECT_EQ(wd.denials(), 1u);
}

TEST(Watchdog, GrantAllowsSpecificCore)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(42, 1);
    EXPECT_EQ(wd.check(1, Privilege::Low, 42),
              WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.check(2, Privilege::Low, 42),
              WatchdogVerdict::DeniedWrongCore);
}

TEST(Watchdog, MultipleGrantsOnOneFrame)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.grant(7, 2);
    EXPECT_EQ(wd.check(1, Privilege::Low, 7), WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.check(2, Privilege::Low, 7), WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.check(3, Privilege::Low, 7),
              WatchdogVerdict::DeniedWrongCore);
}

TEST(Watchdog, RevokeSingleCore)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.grant(7, 2);
    wd.revoke(7, 1);
    EXPECT_FALSE(wd.isGranted(7, 1));
    EXPECT_TRUE(wd.isGranted(7, 2));
}

TEST(Watchdog, RevokeLastGrantMakesPrivate)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.revoke(7, 1);
    EXPECT_EQ(wd.check(1, Privilege::Low, 7),
              WatchdogVerdict::DeniedPrivate);
}

TEST(Watchdog, RevokeAll)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.grant(7, 2);
    wd.revokeAll(7);
    EXPECT_FALSE(wd.isGranted(7, 1));
    EXPECT_FALSE(wd.isGranted(7, 2));
}

TEST(Watchdog, RevokeOnUngrantedFrameIsNoop)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.revoke(99, 1);
    wd.revokeAll(99);
    EXPECT_EQ(wd.denials(), 0u);
}

TEST(WatchdogDeath, RejectsCoreBeyond64)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    EXPECT_DEATH(wd.grant(1, 64), "64 cores");
}
