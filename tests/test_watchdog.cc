/** @file Tests for the INDRA memory watchdog (Section 2.3.1). */

#include <gtest/gtest.h>

#include "mem/watchdog.hh"
#include "sim/stats.hh"

using namespace indra;
using mem::MemWatchdog;
using mem::WatchdogVerdict;

TEST(Watchdog, HighPrivilegeAlwaysAllowed)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    EXPECT_EQ(wd.check(0, Privilege::High, 123),
              WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.denials(), 0u);
}

TEST(Watchdog, UngrantedFrameIsPrivate)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    EXPECT_EQ(wd.check(1, Privilege::Low, 42),
              WatchdogVerdict::DeniedPrivate);
    EXPECT_EQ(wd.denials(), 1u);
}

TEST(Watchdog, GrantAllowsSpecificCore)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(42, 1);
    EXPECT_EQ(wd.check(1, Privilege::Low, 42),
              WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.check(2, Privilege::Low, 42),
              WatchdogVerdict::DeniedWrongCore);
}

TEST(Watchdog, MultipleGrantsOnOneFrame)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.grant(7, 2);
    EXPECT_EQ(wd.check(1, Privilege::Low, 7), WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.check(2, Privilege::Low, 7), WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.check(3, Privilege::Low, 7),
              WatchdogVerdict::DeniedWrongCore);
}

TEST(Watchdog, RevokeSingleCore)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.grant(7, 2);
    wd.revoke(7, 1);
    EXPECT_FALSE(wd.isGranted(7, 1));
    EXPECT_TRUE(wd.isGranted(7, 2));
}

TEST(Watchdog, RevokeLastGrantMakesPrivate)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.revoke(7, 1);
    EXPECT_EQ(wd.check(1, Privilege::Low, 7),
              WatchdogVerdict::DeniedPrivate);
}

TEST(Watchdog, RevokeAll)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(7, 1);
    wd.grant(7, 2);
    wd.revokeAll(7);
    EXPECT_FALSE(wd.isGranted(7, 1));
    EXPECT_FALSE(wd.isGranted(7, 2));
}

TEST(Watchdog, RevokeOnUngrantedFrameIsNoop)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.revoke(99, 1);
    wd.revokeAll(99);
    EXPECT_EQ(wd.denials(), 0u);
}

TEST(Watchdog, RevokeAllClearsEveryCore)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    for (CoreId c = 0; c < 64; ++c)
        wd.grant(7, c);
    for (CoreId c = 0; c < 64; ++c)
        EXPECT_TRUE(wd.isGranted(7, c));
    wd.revokeAll(7);
    for (CoreId c = 0; c < 64; ++c)
        EXPECT_FALSE(wd.isGranted(7, c)) << "core " << c;
    // The frame is private again, not wrong-core.
    EXPECT_EQ(wd.check(0, Privilege::Low, 7),
              WatchdogVerdict::DeniedPrivate);
}

TEST(Watchdog, WrongCoreTakesPrecedenceOverPrivate)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    // While ANY grant exists on the frame, a non-granted core gets
    // DeniedWrongCore (the frame is shared, just not with it).
    wd.grant(9, 3);
    EXPECT_EQ(wd.check(5, Privilege::Low, 9),
              WatchdogVerdict::DeniedWrongCore);
    // Once the last grant is revoked, the same access degrades to
    // DeniedPrivate (nobody may touch the frame).
    wd.revoke(9, 3);
    EXPECT_EQ(wd.check(5, Privilege::Low, 9),
              WatchdogVerdict::DeniedPrivate);
    EXPECT_EQ(wd.denials(), 2u);
}

TEST(Watchdog, HighestCoreIdIsUsable)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(11, 63);  // last representable core in the 64-bit mask
    EXPECT_EQ(wd.check(63, Privilege::Low, 11),
              WatchdogVerdict::Allowed);
    EXPECT_EQ(wd.check(62, Privilege::Low, 11),
              WatchdogVerdict::DeniedWrongCore);
    wd.revoke(11, 63);
    EXPECT_FALSE(wd.isGranted(11, 63));
}

TEST(WatchdogDeath, RejectsCoreBeyond64)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    EXPECT_DEATH(wd.grant(1, 64), "64 cores");
}

TEST(WatchdogDeath, CheckRejectsCoreBeyond64)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    // A low-privilege check with core 64 would shift out of the
    // 64-bit grant mask (undefined behaviour), so it must panic, not
    // silently alias some other core's grant.
    EXPECT_DEATH(wd.check(64, Privilege::Low, 1), "64 cores");
}

TEST(Watchdog, HighPrivilegeCheckSkipsCoreValidation)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    // High privilege short-circuits before the mask is consulted;
    // the resurrector's own accesses never carry a maskable core id.
    EXPECT_EQ(wd.check(64, Privilege::High, 1),
              WatchdogVerdict::Allowed);
}

TEST(WatchdogDeath, RevokeRejectsCoreBeyond64)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    wd.grant(1, 0);
    EXPECT_DEATH(wd.revoke(1, 64), "64 cores");
    // Even on a frame with no grants the id must be validated.
    EXPECT_DEATH(wd.revoke(99, 64), "64 cores");
}

TEST(WatchdogDeath, IsGrantedRejectsCoreBeyond64)
{
    stats::StatGroup g("t");
    MemWatchdog wd(g);
    EXPECT_DEATH((void)wd.isGranted(1, 64), "64 cores");
}
