/** @file Tests for the DRAM timing model and the memory bus. */

#include <gtest/gtest.h>

#include "mem/bus.hh"
#include "mem/dram.hh"
#include "sim/stats.hh"

using namespace indra;
using mem::DramModel;
using mem::MemoryBus;

namespace
{

DramConfig
dcfg()
{
    DramConfig d;
    d.numBanks = 4;
    d.rowBytes = 4096;
    d.casLatency = 20;
    d.prechargeLatency = 7;
    d.rasToCasLatency = 7;
    return d;
}

} // anonymous namespace

TEST(Dram, FirstAccessIsRowMiss)
{
    stats::StatGroup g("t");
    DramModel dram(dcfg(), 5, 8, g);
    // Row closed: RCD + CAS = 27 bus clocks, + 8 beats for 64B.
    auto r = dram.access(0, 0x0, 64);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(r.latency, (27u + 8u) * 5u);
}

TEST(Dram, OpenRowHitIsCasOnly)
{
    stats::StatGroup g("t");
    DramModel dram(dcfg(), 5, 8, g);
    dram.access(0, 0x0, 64);
    auto r = dram.access(10000, 0x40, 64);  // same row
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(r.latency, (20u + 8u) * 5u);
}

TEST(Dram, RowConflictAddsPrecharge)
{
    stats::StatGroup g("t");
    DramModel dram(dcfg(), 5, 8, g);
    dram.access(0, 0x0, 64);
    // Same bank (rows 4 apart with 4 banks), different row.
    auto r = dram.access(10000, 4ull * 4096, 64);
    EXPECT_EQ(dram.rowConflicts(), 1u);
    EXPECT_EQ(r.latency, (7u + 7u + 20u + 8u) * 5u);
}

TEST(Dram, DifferentBanksDontConflict)
{
    stats::StatGroup g("t");
    DramModel dram(dcfg(), 5, 8, g);
    dram.access(0, 0x0, 64);
    dram.access(10000, 4096, 64);  // row 1 -> bank 1
    EXPECT_EQ(dram.rowConflicts(), 0u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(Dram, BankBusySerializesBackToBack)
{
    stats::StatGroup g("t");
    DramModel dram(dcfg(), 5, 8, g);
    auto r1 = dram.access(0, 0x0, 64);
    auto r2 = dram.access(0, 0x40, 64);  // same bank, same tick
    EXPECT_EQ(r2.startTick, r1.doneTick);
    EXPECT_GT(r2.latency, (20u + 8u) * 5u);
}

TEST(Dram, DrainClosesRows)
{
    stats::StatGroup g("t");
    DramModel dram(dcfg(), 5, 8, g);
    dram.access(0, 0x0, 64);
    dram.drain();
    dram.access(10000, 0x40, 64);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(Dram, SmallTransfersStillOneBeat)
{
    stats::StatGroup g("t");
    DramModel dram(dcfg(), 5, 8, g);
    auto r = dram.access(0, 0x0, 4);
    EXPECT_EQ(r.latency, (27u + 1u) * 5u);
}

TEST(Bus, TransferOccupiesBus)
{
    stats::StatGroup g("t");
    MemoryBus bus(5, 8, g);
    auto r1 = bus.transfer(0, 64);  // 8 beats x 5 = 40 cycles
    EXPECT_EQ(r1.startTick, 0u);
    EXPECT_EQ(r1.doneTick, 40u);
    EXPECT_EQ(bus.freeAt(), 40u);
}

TEST(Bus, SecondTransferQueues)
{
    stats::StatGroup g("t");
    MemoryBus bus(5, 8, g);
    bus.transfer(0, 64);
    auto r2 = bus.transfer(10, 64);
    EXPECT_EQ(r2.startTick, 40u);
    EXPECT_EQ(r2.doneTick, 80u);
}

TEST(Bus, NoQueueWhenIdle)
{
    stats::StatGroup g("t");
    MemoryBus bus(5, 8, g);
    bus.transfer(0, 8);
    auto r = bus.transfer(100, 8);
    EXPECT_EQ(r.startTick, 100u);
    EXPECT_EQ(r.doneTick, 105u);
}

TEST(Bus, BeatsRoundUp)
{
    stats::StatGroup g("t");
    MemoryBus bus(5, 8, g);
    auto r = bus.transfer(0, 9);  // 2 beats
    EXPECT_EQ(r.doneTick, 10u);
}

TEST(Bus, DrainFrees)
{
    stats::StatGroup g("t");
    MemoryBus bus(5, 8, g);
    bus.transfer(0, 64);
    bus.drain();
    EXPECT_EQ(bus.freeAt(), 0u);
}
