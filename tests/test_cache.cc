/** @file Tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include <tuple>

#include "mem/cache.hh"
#include "sim/stats.hh"

using namespace indra;
using mem::Cache;
using mem::CacheResult;

namespace
{

CacheConfig
cfg4x64(std::uint64_t size, std::uint32_t line, std::uint32_t ways,
        bool wb = true)
{
    return CacheConfig{"c", size, line, ways, 1, wb};
}

} // anonymous namespace

TEST(Cache, MissThenHit)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit);  // same line
    EXPECT_FALSE(c.access(0x140, false).hit); // next line
}

TEST(Cache, DirectMappedConflict)
{
    stats::StatGroup g("t");
    // 1KB direct mapped, 64B lines -> 16 sets; addresses 1KB apart
    // conflict.
    Cache c(cfg4x64(1024, 64, 1), g);
    EXPECT_FALSE(c.access(0x0, false).hit);
    EXPECT_FALSE(c.access(0x400, false).hit);  // evicts 0x0
    EXPECT_FALSE(c.access(0x0, false).hit);    // conflict miss
}

TEST(Cache, TwoWayHoldsBothConflictingLines)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);
    c.access(0x0, false);
    c.access(0x200, false);  // same set (8 sets), other way
    EXPECT_TRUE(c.access(0x0, false).hit);
    EXPECT_TRUE(c.access(0x200, false).hit);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);  // 8 sets
    c.access(0x0, false);     // way A
    c.access(0x200, false);   // way B
    c.access(0x0, false);     // touch A (B is now LRU)
    c.access(0x400, false);   // evicts B
    EXPECT_TRUE(c.access(0x0, false).hit);
    EXPECT_FALSE(c.access(0x200, false).hit);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 1), g);  // 16 sets DM
    c.access(0x0, true);  // dirty
    CacheResult r = c.access(0x400, false);  // evicts dirty 0x0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0x0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 1), g);
    c.access(0x0, false);
    CacheResult r = c.access(0x400, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteThroughConfigNeverDirty)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 1, false), g);  // not write-back
    c.access(0x0, true);
    CacheResult r = c.access(0x400, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, HitOnWriteMarksDirty)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 1), g);
    c.access(0x0, false);  // clean fill
    c.access(0x0, true);   // dirty on hit
    CacheResult r = c.access(0x400, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, ContainsProbesWithoutSideEffects)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);
    std::uint64_t before = c.accesses();
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_EQ(c.accesses(), before);
    c.access(0x0, false);
    EXPECT_TRUE(c.contains(0x0));
}

TEST(Cache, InvalidateAll)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);
    c.access(0x0, true);
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0x0));
    // Dirty state is dropped too: the refill evicts nothing.
    EXPECT_FALSE(c.access(0x0, false).writeback);
}

TEST(Cache, InvalidateLineReportsDirty)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);
    c.access(0x0, true);
    c.access(0x40, false);
    EXPECT_TRUE(c.invalidateLine(0x0));
    EXPECT_FALSE(c.invalidateLine(0x40));  // present but clean
    EXPECT_FALSE(c.invalidateLine(0x80));  // absent
}

TEST(Cache, MissRateAccounting)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);
    c.access(0x0, false);  // miss
    c.access(0x0, false);  // hit
    c.access(0x0, false);  // hit
    c.access(0x40, false); // miss
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, FilledFlagOnlyOnMiss)
{
    stats::StatGroup g("t");
    Cache c(cfg4x64(1024, 64, 2), g);
    EXPECT_TRUE(c.access(0x0, false).filled);
    EXPECT_FALSE(c.access(0x0, false).filled);
}

// Parameterized sweep: capacity/LRU invariants across geometries.
class CacheGeometry
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>>
{
};

TEST_P(CacheGeometry, WorkingSetWithinCapacityAlwaysHitsAfterWarmup)
{
    auto [size, line, ways] = GetParam();
    stats::StatGroup g("t");
    Cache c(CacheConfig{"c", size, line, ways, 1, true}, g);
    std::uint64_t lines = size / line;
    // Touch exactly `lines` distinct line addresses twice; second pass
    // must be all hits regardless of geometry.
    for (std::uint64_t i = 0; i < lines; ++i)
        c.access(i * line, false);
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * line, false).hit) << "line " << i;
}

TEST_P(CacheGeometry, OverCapacityCausesEvictions)
{
    auto [size, line, ways] = GetParam();
    stats::StatGroup g("t");
    Cache c(CacheConfig{"c", size, line, ways, 1, true}, g);
    std::uint64_t lines = size / line;
    for (std::uint64_t i = 0; i < lines * 2; ++i)
        c.access(i * line, false);
    EXPECT_EQ(c.misses(), lines * 2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(
        std::make_tuple(16u * 1024, 32u, 1u),   // paper L1
        std::make_tuple(512u * 1024, 64u, 4u),  // paper L2
        std::make_tuple(1024u, 64u, 2u),
        std::make_tuple(4096u, 32u, 4u),
        std::make_tuple(2048u, 64u, 8u),
        std::make_tuple(8192u, 128u, 2u)));
