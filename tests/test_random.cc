/** @file Tests for the deterministic PCG32 generator. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/random.hh"

using namespace indra;

TEST(Pcg32, DeterministicFromSeed)
{
    Pcg32 a(123, 9);
    Pcg32 b(123, 9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(1, 10), b(1, 11);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBounds)
{
    Pcg32 rng(5);
    for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Pcg32, BoundedOneAlwaysZero)
{
    Pcg32 rng(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Pcg32, UniformInclusiveRange)
{
    Pcg32 rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        std::uint64_t v = rng.uniform(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(Pcg32, UniformDegenerateRange)
{
    Pcg32 rng(11);
    EXPECT_EQ(rng.uniform(42, 42), 42u);
}

// Regression: for spans wider than 2^32 uniform() used a bare
// `r % span`, which for span = 3 * 2^62 draws the bottom quarter of
// the range twice as often as everything else (2^64 = span + 2^62,
// so residues below 2^62 have two preimages). With Lemire-style
// rejection every third of the span is hit equally often.
TEST(Pcg32, UniformWideSpanUnbiased)
{
    Pcg32 rng(29);
    const std::uint64_t third = 1ULL << 62;
    const std::uint64_t hi = 3 * third - 1;
    const int n = 3000;
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = rng.uniform(0, hi);
        ASSERT_LE(v, hi);
        ++counts[v / third];
    }
    // The modulo-biased draw put ~50% of the mass in the first third;
    // an unbiased draw puts ~33.3% in each.
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.05);
}

TEST(Pcg32, UniformWideSpanCoversWholeRange)
{
    Pcg32 rng(31);
    const std::uint64_t lo = 1ULL << 33;
    const std::uint64_t hi = lo + (1ULL << 34);
    bool sawUpperHalf = false;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.uniform(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
        if (v > lo + (hi - lo) / 2)
            sawUpperHalf = true;
    }
    EXPECT_TRUE(sawUpperHalf);
}

TEST(Pcg32, Next64IsTwoSequencedDraws)
{
    Pcg32 a(7, 3), b(7, 3);
    std::uint64_t high = b.next();
    std::uint64_t low = b.next();
    EXPECT_EQ(a.next64(), (high << 32) | low);
}

TEST(Pcg32, UniformRealInHalfOpenUnit)
{
    Pcg32 rng(3);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Pcg32, BernoulliExtremes)
{
    Pcg32 rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Pcg32, BernoulliFrequencyNearP)
{
    Pcg32 rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3))
            ++hits;
    }
    double freq = static_cast<double>(hits) / n;
    EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(Pcg32, GeometricMeanNearExpectation)
{
    Pcg32 rng(19);
    double sum = 0;
    const int n = 20000;
    const double p = 0.25;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(p);
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.2);
}

TEST(Pcg32, GeometricOneIsZero)
{
    Pcg32 rng(19);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Pcg32, ZipfInRange)
{
    Pcg32 rng(23);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.zipf(40, 1.1), 40u);
}

TEST(Pcg32, ZipfSkewsTowardZero)
{
    Pcg32 rng(23);
    int low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        std::uint32_t v = rng.zipf(100, 1.2);
        if (v < 10)
            ++low;
        if (v >= 90)
            ++high;
    }
    EXPECT_GT(low, high * 4);
}

TEST(Pcg32, ZipfSingleton)
{
    Pcg32 rng(23);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Pcg32, ForkIsIndependent)
{
    Pcg32 parent(31);
    Pcg32 child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.next() == child.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Pcg32, ForkDeterministic)
{
    Pcg32 p1(31), p2(31);
    Pcg32 c1 = p1.fork();
    Pcg32 c2 = p2.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}
