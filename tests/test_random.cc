/** @file Tests for the deterministic PCG32 generator. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/random.hh"

using namespace indra;

TEST(Pcg32, DeterministicFromSeed)
{
    Pcg32 a(123, 9);
    Pcg32 b(123, 9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(1, 10), b(1, 11);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBounds)
{
    Pcg32 rng(5);
    for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Pcg32, BoundedOneAlwaysZero)
{
    Pcg32 rng(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Pcg32, UniformInclusiveRange)
{
    Pcg32 rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        std::uint64_t v = rng.uniform(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(Pcg32, UniformDegenerateRange)
{
    Pcg32 rng(11);
    EXPECT_EQ(rng.uniform(42, 42), 42u);
}

TEST(Pcg32, UniformRealInHalfOpenUnit)
{
    Pcg32 rng(3);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Pcg32, BernoulliExtremes)
{
    Pcg32 rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Pcg32, BernoulliFrequencyNearP)
{
    Pcg32 rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3))
            ++hits;
    }
    double freq = static_cast<double>(hits) / n;
    EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(Pcg32, GeometricMeanNearExpectation)
{
    Pcg32 rng(19);
    double sum = 0;
    const int n = 20000;
    const double p = 0.25;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(p);
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.2);
}

TEST(Pcg32, GeometricOneIsZero)
{
    Pcg32 rng(19);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Pcg32, ZipfInRange)
{
    Pcg32 rng(23);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.zipf(40, 1.1), 40u);
}

TEST(Pcg32, ZipfSkewsTowardZero)
{
    Pcg32 rng(23);
    int low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        std::uint32_t v = rng.zipf(100, 1.2);
        if (v < 10)
            ++low;
        if (v >= 90)
            ++high;
    }
    EXPECT_GT(low, high * 4);
}

TEST(Pcg32, ZipfSingleton)
{
    Pcg32 rng(23);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Pcg32, ForkIsIndependent)
{
    Pcg32 parent(31);
    Pcg32 child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.next() == child.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Pcg32, ForkDeterministic)
{
    Pcg32 p1(31), p2(31);
    Pcg32 c1 = p1.fork();
    Pcg32 c2 = p2.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}
