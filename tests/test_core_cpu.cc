/** @file Tests for the core model: timing, trace emission, hooks,
 * and the synchronization rules of Section 3.2.5. */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hh"
#include "test_util.hh"

using namespace indra;
using testutil::MemoryRig;

namespace
{

/** Records every trace record; configurable push/drain behaviour. */
struct FakeSink : cpu::TraceSink
{
    std::vector<cpu::TraceRecord> records;
    Tick pushDelay = 0;
    Tick drain = 0;

    Tick
    submit(const cpu::TraceRecord &rec, Tick tick) override
    {
        records.push_back(rec);
        return tick + pushDelay;
    }

    Tick drainTick() const override { return drain; }

    int
    countKind(cpu::TraceKind k) const
    {
        int n = 0;
        for (const auto &r : records) {
            if (r.kind == k)
                ++n;
        }
        return n;
    }
};

/** Counts hook invocations and observes memory at hook time. */
struct FakeHooks : cpu::CheckpointHooks
{
    int stores = 0;
    int loads = 0;
    Cycles storeCost = 0;
    std::uint64_t observedAtStore = 0;
    MemoryRig *rig = nullptr;
    Addr watch = 0;

    Cycles
    onStore(Tick, Pid, Addr vaddr, std::uint32_t) override
    {
        ++stores;
        if (rig && vaddr == watch)
            observedAtStore = rig->peek64(watch);
        return storeCost;
    }

    Cycles onLoad(Tick, Pid, Addr, std::uint32_t) override
    {
        ++loads;
        return 0;
    }
};

struct FakeOs : cpu::SyscallHandler
{
    int calls = 0;
    bool terminate = false;

    cpu::SyscallResult
    syscall(Tick, Pid, std::uint32_t, std::uint64_t,
            std::uint64_t) override
    {
        ++calls;
        cpu::SyscallResult r;
        r.cycles = 50;
        r.terminated = terminate;
        return r;
    }
};

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : rig(),
          core(rig.cfg, 1, Privilege::Low, *rig.hierarchy, rig.phys,
               *rig.space, rig.stats)
    {
        rig.space->mapRegion(0x00400000, 8, os::Region::Code);
        rig.space->mapRegion(0x10000000, 8, os::Region::Data);
        core.setTraceSink(&sink);
    }

    cpu::Instruction
    alu(Addr pc)
    {
        cpu::Instruction i;
        i.op = cpu::Op::Alu;
        i.pc = pc;
        return i;
    }

    MemoryRig rig;
    FakeSink sink;
    cpu::Core core;
};

} // anonymous namespace

TEST_F(CoreTest, EightWideRetirement)
{
    // 16 ALU ops in one resident line: 2 cycles once the line is warm.
    core.execute(1, alu(0x00400000));  // cold fetch
    Tick warm = core.curTick();
    for (int i = 1; i < 8; ++i)
        core.execute(1, alu(0x00400000 + i * 4));
    EXPECT_EQ(core.curTick(), warm + 1);
    EXPECT_EQ(core.instructions(), 8u);
}

TEST_F(CoreTest, FetchMissStalls)
{
    core.execute(1, alu(0x00400000));
    Tick t1 = core.curTick();
    core.execute(1, alu(0x00402000));  // new line: L2+DRAM fetch
    EXPECT_GT(core.curTick(), t1 + 1);
}

TEST_F(CoreTest, StoreWritesMemoryFunctionally)
{
    cpu::Instruction st;
    st.op = cpu::Op::Store;
    st.pc = 0x00400000;
    st.effAddr = 0x10000040;
    st.value = 0x1234;
    core.execute(1, st);
    EXPECT_EQ(rig.peek64(0x10000040), 0x1234u);
}

TEST_F(CoreTest, LoadReadsValueBack)
{
    rig.poke64(0x10000080, 0xfeed);
    cpu::Instruction ld;
    ld.op = cpu::Op::Load;
    ld.pc = 0x00400000;
    ld.effAddr = 0x10000080;
    auto r = core.execute(1, ld);
    EXPECT_EQ(r.loadValue, 0xfeedu);
}

TEST_F(CoreTest, HookCalledBeforeFunctionalWrite)
{
    FakeHooks hooks;
    hooks.rig = &rig;
    hooks.watch = 0x10000040;
    core.setCheckpointHooks(&hooks);
    rig.poke64(0x10000040, 0xaaaa);  // old value

    cpu::Instruction st;
    st.op = cpu::Op::Store;
    st.pc = 0x00400000;
    st.effAddr = 0x10000040;
    st.value = 0xbbbb;
    core.execute(1, st);

    // The hook must observe the OLD value (backup-before-write).
    EXPECT_EQ(hooks.observedAtStore, 0xaaaau);
    EXPECT_EQ(rig.peek64(0x10000040), 0xbbbbu);
    EXPECT_EQ(hooks.stores, 1);
}

TEST_F(CoreTest, HookCostStallsPipeline)
{
    FakeHooks hooks;
    hooks.storeCost = 500;
    core.setCheckpointHooks(&hooks);
    cpu::Instruction st;
    st.op = cpu::Op::Store;
    st.pc = 0x00400000;
    st.effAddr = 0x10000040;
    Tick before = core.curTick();
    core.execute(1, st);
    EXPECT_GE(core.curTick(), before + 500);
}

TEST_F(CoreTest, CallEmitsCallRecord)
{
    cpu::Instruction call;
    call.op = cpu::Op::Call;
    call.pc = 0x00400100;
    call.target = 0x00400400;
    call.effAddr = 0x7ffe0000;
    core.execute(1, call);
    ASSERT_EQ(sink.countKind(cpu::TraceKind::Call), 1);
    const auto &rec = sink.records.back();
    EXPECT_EQ(rec.target, 0x00400400u);
    EXPECT_EQ(rec.retAddr, 0x00400104u);
    EXPECT_EQ(rec.sp, 0x7ffe0000u);
    EXPECT_EQ(rec.pid, 1u);
}

TEST_F(CoreTest, IndirectCallEmitsCallAndTransfer)
{
    cpu::Instruction call;
    call.op = cpu::Op::CallInd;
    call.pc = 0x00400100;
    call.target = 0x00400800;
    core.execute(1, call);
    EXPECT_EQ(sink.countKind(cpu::TraceKind::Call), 1);
    EXPECT_EQ(sink.countKind(cpu::TraceKind::CtrlTransfer), 1);
}

TEST_F(CoreTest, ReturnAndJumpIndEmitRecords)
{
    cpu::Instruction ret;
    ret.op = cpu::Op::Return;
    ret.pc = 0x00400200;
    ret.target = 0x00400104;
    core.execute(1, ret);
    cpu::Instruction jmp;
    jmp.op = cpu::Op::JumpInd;
    jmp.pc = 0x00400204;
    jmp.target = 0x00400400;
    core.execute(1, jmp);
    EXPECT_EQ(sink.countKind(cpu::TraceKind::Return), 1);
    EXPECT_EQ(sink.countKind(cpu::TraceKind::CtrlTransfer), 1);
}

TEST_F(CoreTest, SetjmpLongjmpEmitRecords)
{
    cpu::Instruction sj;
    sj.op = cpu::Op::Setjmp;
    sj.pc = 0x00400100;
    sj.imm = 3;
    core.execute(1, sj);
    ASSERT_EQ(sink.countKind(cpu::TraceKind::Setjmp), 1);
    EXPECT_EQ(sink.records.back().env, 3u);
    EXPECT_EQ(sink.records.back().target, 0x00400104u);

    cpu::Instruction lj;
    lj.op = cpu::Op::Longjmp;
    lj.pc = 0x00400300;
    lj.target = 0x00400104;
    lj.imm = 3;
    core.execute(1, lj);
    EXPECT_EQ(sink.countKind(cpu::TraceKind::Longjmp), 1);
}

TEST_F(CoreTest, DirectJumpEmitsNothing)
{
    core.execute(1, alu(0x00400100));  // warm the fetch line
    sink.records.clear();
    cpu::Instruction jmp;
    jmp.op = cpu::Op::Jump;
    jmp.pc = 0x00400104;
    jmp.target = 0x00400200;
    core.execute(1, jmp);
    EXPECT_TRUE(sink.records.empty());
}

TEST_F(CoreTest, CodeOriginEmittedOnFillOnce)
{
    core.execute(1, alu(0x00400000));
    int first = sink.countKind(cpu::TraceKind::CodeOrigin);
    EXPECT_EQ(first, 1);
    // Same page, new line: CAM filters the second check.
    core.execute(1, alu(0x00400040));
    EXPECT_EQ(sink.countKind(cpu::TraceKind::CodeOrigin), 1);
    // Far page: CAM miss, new record.
    core.execute(1, alu(0x00402000));
    EXPECT_EQ(sink.countKind(cpu::TraceKind::CodeOrigin), 2);
}

TEST_F(CoreTest, SyscallWaitsForMonitorDrain)
{
    FakeOs osh;
    core.setSyscallHandler(&osh);
    sink.drain = 5000;
    cpu::Instruction sc;
    sc.op = cpu::Op::Syscall;
    sc.pc = 0x00400000;
    sc.imm = 99;
    core.execute(1, sc);
    EXPECT_GE(core.curTick(), 5000u);
    EXPECT_EQ(osh.calls, 1);
}

TEST_F(CoreTest, IoWriteWaitsForMonitorDrain)
{
    sink.drain = 7777;
    cpu::Instruction io;
    io.op = cpu::Op::IoWrite;
    io.pc = 0x00400000;
    core.execute(1, io);
    EXPECT_GE(core.curTick(), 7777u);
}

TEST_F(CoreTest, SyscallTerminationPropagates)
{
    FakeOs osh;
    osh.terminate = true;
    core.setSyscallHandler(&osh);
    cpu::Instruction sc;
    sc.op = cpu::Op::Syscall;
    sc.pc = 0x00400000;
    auto r = core.execute(1, sc);
    EXPECT_TRUE(r.terminated);
}

TEST_F(CoreTest, HaltSetsFlag)
{
    cpu::Instruction h;
    h.op = cpu::Op::Halt;
    h.pc = 0x00400000;
    auto r = core.execute(1, h);
    EXPECT_TRUE(r.halted);
}

TEST_F(CoreTest, UnmappedFetchFaults)
{
    auto r = core.execute(1, alu(0x50000000));
    EXPECT_EQ(r.fault, mem::MemFault::Unmapped);
}

TEST_F(CoreTest, UnmappedStoreFaults)
{
    cpu::Instruction st;
    st.op = cpu::Op::Store;
    st.pc = 0x00400000;
    st.effAddr = 0x60000000;
    auto r = core.execute(1, st);
    EXPECT_EQ(r.fault, mem::MemFault::Unmapped);
}

TEST_F(CoreTest, HighPrivilegeCoreEmitsNoRecords)
{
    cpu::Core high(rig.cfg, 0, Privilege::High, *rig.hierarchy,
                   rig.phys, *rig.space, rig.stats);
    high.setTraceSink(&sink);
    cpu::Instruction call;
    call.op = cpu::Op::Call;
    call.pc = 0x00400100;
    call.target = 0x00400400;
    high.execute(1, call);
    EXPECT_TRUE(sink.records.empty());
}

TEST_F(CoreTest, StallUntilMovesTimeForwardOnly)
{
    core.stallUntil(100);
    EXPECT_EQ(core.curTick(), 100u);
    core.stallUntil(50);
    EXPECT_EQ(core.curTick(), 100u);
}

TEST_F(CoreTest, ResetTimeClearsClock)
{
    core.execute(1, alu(0x00400000));
    core.resetTime();
    EXPECT_EQ(core.curTick(), 0u);
}

TEST_F(CoreTest, FlushPipelineForcesRefetch)
{
    core.execute(1, alu(0x00400000));
    std::uint64_t accesses =
        rig.hierarchy->l1iCache().accesses();
    core.execute(1, alu(0x00400004));  // same line: no new access
    EXPECT_EQ(rig.hierarchy->l1iCache().accesses(), accesses);
    core.flushPipeline();
    core.execute(1, alu(0x00400008));  // refetch after flush
    EXPECT_EQ(rig.hierarchy->l1iCache().accesses(), accesses + 1);
}

// FilterCam behaviour within the core.
TEST_F(CoreTest, ZeroEntryCamSendsEveryFill)
{
    SystemConfig cfg = rig.cfg;
    cfg.filterCamEntries = 0;
    cpu::Core nocam(cfg, 2, Privilege::Low, *rig.hierarchy, rig.phys,
                    *rig.space, rig.stats);
    nocam.setTraceSink(&sink);
    nocam.execute(1, alu(0x00400000));
    nocam.execute(1, alu(0x00400040));
    nocam.execute(1, alu(0x00400080));
    EXPECT_EQ(sink.countKind(cpu::TraceKind::CodeOrigin), 3);
}
