/** @file Tests for key=value configuration parsing. */

#include <gtest/gtest.h>

#include "sim/config_reader.hh"

using namespace indra;

TEST(ConfigReader, NumericSettings)
{
    SystemConfig cfg;
    EXPECT_TRUE(applySetting(cfg, "traceFifoEntries", "64"));
    EXPECT_TRUE(applySetting(cfg, "filterCamEntries", "128"));
    EXPECT_TRUE(applySetting(cfg, "rngSeed", "999"));
    EXPECT_EQ(cfg.traceFifoEntries, 64u);
    EXPECT_EQ(cfg.filterCamEntries, 128u);
    EXPECT_EQ(cfg.rngSeed, 999u);
}

TEST(ConfigReader, BooleanSettings)
{
    SystemConfig cfg;
    EXPECT_TRUE(applySetting(cfg, "monitorEnabled", "false"));
    EXPECT_FALSE(cfg.monitorEnabled);
    EXPECT_TRUE(applySetting(cfg, "monitorEnabled", "yes"));
    EXPECT_TRUE(cfg.monitorEnabled);
    EXPECT_TRUE(applySetting(cfg, "eagerRollback", "1"));
    EXPECT_TRUE(cfg.eagerRollback);
    EXPECT_TRUE(applySetting(cfg, "sharedResurrector", "on"));
    EXPECT_TRUE(cfg.sharedResurrector);
}

TEST(ConfigReader, SchemeSetting)
{
    SystemConfig cfg;
    EXPECT_TRUE(
        applySetting(cfg, "checkpointScheme", "memory-update-log"));
    EXPECT_EQ(cfg.checkpointScheme, CheckpointScheme::MemoryUpdateLog);
}

TEST(ConfigReader, UnknownKeyReturnsFalse)
{
    SystemConfig cfg;
    EXPECT_FALSE(applySetting(cfg, "noSuchKnob", "1"));
}

TEST(ConfigReader, SchemeNamesRoundTrip)
{
    for (CheckpointScheme s :
         {CheckpointScheme::None, CheckpointScheme::DeltaBackup,
          CheckpointScheme::VirtualCheckpoint,
          CheckpointScheme::MemoryUpdateLog,
          CheckpointScheme::SoftwareCheckpoint,
          CheckpointScheme::DomainRewind}) {
        EXPECT_EQ(checkpointSchemeFromName(checkpointSchemeName(s)), s);
    }
}

TEST(ConfigReader, DomainSettings)
{
    SystemConfig cfg;
    EXPECT_TRUE(applySetting(cfg, "checkpointScheme", "domain-rewind"));
    EXPECT_TRUE(applySetting(cfg, "domainCount", "8"));
    EXPECT_TRUE(applySetting(cfg, "domainRewindSetupCycles", "5000"));
    EXPECT_EQ(cfg.checkpointScheme, CheckpointScheme::DomainRewind);
    EXPECT_EQ(cfg.domainCount, 8u);
    EXPECT_EQ(cfg.domainRewindSetupCycles, 5000u);
}

TEST(ConfigReaderDeath, BadSchemeIsFatal)
{
    // The error must name both the offending value and the setting
    // key it arrived through.
    EXPECT_DEATH(checkpointSchemeFromName("gzip"),
                 "setting 'checkpointScheme'.*unknown checkpoint "
                 "scheme 'gzip'");
}

TEST(ConfigReaderDeath, BadSchemeNamesTheOriginatingKey)
{
    EXPECT_DEATH(checkpointSchemeFromName("gzip", "scheme"),
                 "setting 'scheme'");
}

TEST(ConfigReaderDeath, BadSchemeViaSettingIsFatal)
{
    SystemConfig cfg;
    EXPECT_DEATH(applySetting(cfg, "checkpointScheme", "delta-bakcup"),
                 "unknown checkpoint scheme");
}

TEST(ConfigReaderDeath, BadNumberIsFatal)
{
    SystemConfig cfg;
    EXPECT_DEATH(applySetting(cfg, "traceFifoEntries", "lots"),
                 "not a number");
}

TEST(ConfigReaderDeath, BadBooleanIsFatal)
{
    SystemConfig cfg;
    EXPECT_DEATH(applySetting(cfg, "monitorEnabled", "maybe"),
                 "not a boolean");
}

TEST(ConfigReader, ApplySettingsSkipsDriverKeys)
{
    SystemConfig cfg;
    applySettings(cfg, {"daemon=httpd", "requests=9",
                        "traceFifoEntries=48"});
    EXPECT_EQ(cfg.traceFifoEntries, 48u);
}

TEST(ConfigReaderDeath, TypoedConfigLikeKeyIsFatal)
{
    SystemConfig cfg;
    EXPECT_DEATH(applySettings(cfg, {"traceFifoEntriesX=48"}),
                 "unknown config setting");
}

TEST(ConfigReader, KnownKeysNonEmptyAndSorted)
{
    auto keys = knownSettingKeys();
    EXPECT_GT(keys.size(), 20u);
    for (std::size_t i = 1; i < keys.size(); ++i)
        EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(ConfigReader, AttackNamesRoundTrip)
{
    // attackKindFromName lives in net but belongs to the same
    // round-trip family.
    SUCCEED();
}
