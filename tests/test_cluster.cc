/**
 * @file
 * Cluster-layer tests: the Zipf sharder, the shared resurrector
 * pool, the balancer links, the NodeConfig dotted-key router, the
 * NodeHandle stepping contract (window placement is invisible —
 * stepped reports equal runStorm's), and ClusterSim's --jobs
 * bit-identity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hh"
#include "core/node_config.hh"
#include "core/node_handle.hh"
#include "core/system.hh"
#include "harness/parallel_sweep.hh"
#include "sim/random.hh"

using namespace indra;

namespace
{

// ------------------------------------------------------------- Zipf

TEST(ZipfSampler, DeterministicAndInRange)
{
    cluster::ZipfSampler zipf(1000, 0.99);
    Pcg32 rng(7, 1);
    for (int i = 0; i < 2000; ++i) {
        double u = rng.uniformReal();
        std::uint64_t a = zipf.sample(u);
        EXPECT_EQ(a, zipf.sample(u));
        EXPECT_LT(a, zipf.population());
    }
}

TEST(ZipfSampler, SkewFavorsLowRanks)
{
    cluster::ZipfSampler zipf(10000, 0.99);
    EXPECT_GT(zipf.probability(0), 10.0 * zipf.probability(99));
    EXPECT_GT(zipf.probability(99), zipf.probability(9999));
    // Probabilities sum to ~1 (the CDF is normalized and pinned).
    double s = 0;
    for (std::uint64_t r = 0; r < 10000; ++r)
        s += zipf.probability(r);
    EXPECT_NEAR(1.0, s, 1e-9);
}

TEST(ZipfSampler, ThetaZeroIsUniform)
{
    cluster::ZipfSampler zipf(100, 0.0);
    for (std::uint64_t r = 1; r < 100; ++r)
        EXPECT_NEAR(zipf.probability(0), zipf.probability(r), 1e-12);
}

TEST(ZipfSharder, StableAndCoversAllNodes)
{
    const std::uint32_t nodes = 7;
    std::vector<std::uint64_t> perNode(nodes, 0);
    for (std::uint64_t user = 0; user < 10000; ++user) {
        std::uint32_t s = cluster::shardOf(user, nodes);
        EXPECT_EQ(s, cluster::shardOf(user, nodes));
        ASSERT_LT(s, nodes);
        ++perNode[s];
    }
    // The multiplicative hash spreads a contiguous id range close to
    // evenly: every node within 2x of the mean.
    for (std::uint64_t n : perNode) {
        EXPECT_GT(n, 10000 / nodes / 2);
        EXPECT_LT(n, 2 * 10000 / nodes);
    }
}

// ------------------------------------------------- resurrector pool

TEST(ResurrectorPool, UncontendedGrantsStartImmediately)
{
    cluster::ResurrectorPool pool(2);
    auto a = pool.acquire(100, 50);
    EXPECT_EQ(100u, a.start);
    EXPECT_EQ(0u, a.queueDelay);
    // Second slot free: a concurrent demand does not queue.
    auto b = pool.acquire(120, 50);
    EXPECT_EQ(120u, b.start);
    EXPECT_EQ(0u, b.queueDelay);
    EXPECT_EQ(2u, pool.grants());
    EXPECT_EQ(0u, pool.queuedGrants());
}

TEST(ResurrectorPool, ContentionQueuesAndChargesDelay)
{
    cluster::ResurrectorPool pool(1);
    auto a = pool.acquire(100, 1000);
    EXPECT_EQ(0u, a.queueDelay);
    auto b = pool.acquire(200, 1000);
    EXPECT_EQ(1100u, b.start); // waits for the slot to free
    EXPECT_EQ(900u, b.queueDelay);
    EXPECT_EQ(1u, pool.queuedGrants());
    EXPECT_EQ(900u, pool.totalQueueDelay());
    EXPECT_EQ(900u, pool.maxQueueDelay());
    ASSERT_EQ(2u, pool.queueDelays().size());
}

TEST(ResurrectorPool, FifoFairnessInCanonicalOrder)
{
    // Demands applied in nondecreasing ready order receive
    // nondecreasing start times: no later demand overtakes.
    cluster::ResurrectorPool pool(2);
    Tick lastStart = 0;
    Tick ready = 0;
    for (int i = 0; i < 50; ++i) {
        ready += (i % 3) * 400;
        auto g = pool.acquire(ready, 2500);
        EXPECT_GE(g.start, lastStart);
        lastStart = g.start;
    }
}

TEST(ResurrectorPool, FewerSlotsNeverReduceQueueing)
{
    // The same demand stream against shrinking pools: total queueing
    // delay is monotone in contention.
    std::vector<std::pair<Tick, Cycles>> demands;
    for (int i = 0; i < 40; ++i)
        demands.push_back({static_cast<Tick>(i * 700), 3000});
    Cycles prev = 0;
    for (std::uint32_t slots : {8u, 4u, 2u, 1u}) {
        cluster::ResurrectorPool pool(slots);
        for (auto [ready, busy] : demands)
            pool.acquire(ready, busy);
        EXPECT_GE(pool.totalQueueDelay(), prev);
        prev = pool.totalQueueDelay();
    }
    EXPECT_GT(prev, 0u);
}

// ------------------------------------------------------------ links

TEST(NodeLink, UncappedPaysPostingCosts)
{
    cluster::LinkConfig lc;
    lc.ratePerMCycle = 0.0;
    lc.doorbellBatch = 4;
    lc.doorbellCycles = 400;
    lc.descCycles = 40;
    lc.wireCycles = 500;
    cluster::NodeLink link(lc);
    // First of the batch rings the doorbell...
    EXPECT_EQ(1000u + 400 + 40 + 500, link.deliver(1000));
    EXPECT_EQ(1u, link.doorbells());
    // ...the rest of the batch only pay the descriptor write.
    Tick prev = 1000 + 400 + 40;
    for (int i = 1; i < 4; ++i) {
        Tick d = link.deliver(1000);
        EXPECT_EQ(prev + 40 + 500, d);
        prev = d - 500;
    }
    EXPECT_EQ(1u, link.doorbells());
    // A fifth post opens the next batch: doorbell again.
    link.deliver(1000);
    EXPECT_EQ(2u, link.doorbells());
    EXPECT_EQ(5u, link.posted());
}

TEST(NodeLink, DeliveriesAreMonotone)
{
    cluster::LinkConfig lc;
    lc.ratePerMCycle = 5.0;
    lc.burst = 2.0;
    cluster::NodeLink link(lc);
    Pcg32 rng(3, 9);
    Tick ready = 0;
    Tick last = 0;
    for (int i = 0; i < 200; ++i) {
        ready += static_cast<Tick>(rng.uniformReal() * 10000);
        Tick d = link.deliver(ready);
        EXPECT_GE(d, last);
        EXPECT_GE(d, ready);
        last = d;
    }
}

TEST(NodeLink, TokenBucketCapsSustainedRate)
{
    cluster::LinkConfig lc;
    lc.ratePerMCycle = 2.0; // one token per 500k cycles
    lc.burst = 3.0;
    lc.doorbellBatch = 1000; // keep posting costs negligible
    lc.doorbellCycles = 0;
    lc.descCycles = 0;
    lc.wireCycles = 0;
    cluster::NodeLink link(lc);
    // A burst of simultaneous posts: the first `burst` ride the
    // bucket, the rest are spaced at the refill rate.
    std::vector<Tick> departs;
    for (int i = 0; i < 8; ++i)
        departs.push_back(link.deliver(0));
    EXPECT_EQ(0u, departs[0]);
    EXPECT_EQ(0u, departs[2]);
    for (int i = 3; i < 8; ++i)
        EXPECT_GE(departs[i] - departs[i - 1], 490000u);
    EXPECT_GT(link.throttleDelay(), 0u);
}

// ------------------------------------------------ NodeConfig router

TEST(NodeConfigRouter, RoutesByDottedPrefix)
{
    core::NodeConfig node;
    core::applyNodeSetting(node, "checkpointScheme", "domain-rewind");
    EXPECT_EQ(CheckpointScheme::DomainRewind,
              node.system.checkpointScheme);

    core::applyNodeSetting(node, "resilience.queue_bound", "9");
    EXPECT_EQ(9u, node.resilience.queueBound);

    core::applyNodeSetting(node, "rejuvenation.period", "123456");
    EXPECT_EQ(123456u, node.resilience.rejuvenation.period);

    core::applyNodeSetting(node, "adversary.budget", "77");
    EXPECT_EQ(77u, node.adversary.budget);

    core::applyNodeSetting(node, "domain.count", "16");
    EXPECT_EQ(16u, node.system.domainCount);

    EXPECT_TRUE(node.faults.empty());
    core::applyNodeSetting(node, "faults.plan", "macro-corrupt:0.5");
    EXPECT_FALSE(node.faults.empty());
    EXPECT_DOUBLE_EQ(
        0.5, node.faults.rate(faults::FaultKind::MacroCorrupt));
}

TEST(NodeConfigRouter, AppliesListsAndDiesOnGarbage)
{
    core::NodeConfig node;
    core::applyNodeSettings(
        node, {"traceFifoEntries=64", "resilience.queue_bound=5"});
    EXPECT_EQ(64u, node.system.traceFifoEntries);
    EXPECT_EQ(5u, node.resilience.queueBound);

    EXPECT_DEATH(core::applyNodeSetting(node, "no.such_key", "1"),
                 "unknown");
    EXPECT_DEATH(core::applyNodeSettings(node, {"notkeyvalue"}),
                 "key=value");
}

TEST(NodeConfigCompat, AggregateMatchesThreeArgCtor)
{
    // The deprecated 3-arg constructor and the NodeConfig aggregate
    // build identical machines: same deterministic run, same report.
    SystemConfig cfg;
    cfg.physMemBytes = 64ULL * 1024 * 1024;
    resilience::ResilienceConfig rc;
    rc.queueBound = 6;

    resilience::StormPlan plan;
    plan.seed = 11;
    plan.legitRequests = 30;
    plan.legitRatePerMCycle = 2.0;
    plan.attackRatePerMCycle = 4.0;

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 20000;

    auto runWith = [&](core::IndraSystem &sys) {
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        return sys.runStorm(slot, plan);
    };
    core::IndraSystem legacy(cfg, faults::FaultPlan(), rc);
    core::IndraSystem aggregate(
        core::NodeConfig{cfg, faults::FaultPlan(), rc});
    resilience::StormReport a = runWith(legacy);
    resilience::StormReport b = runWith(aggregate);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.legitServed, b.legitServed);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.shedTotal(), b.shedTotal());
}

// --------------------------------------------- NodeHandle stepping

void
expectReportsEqual(const resilience::StormReport &a,
                   const resilience::StormReport &b)
{
    EXPECT_EQ(a.legitArrivals, b.legitArrivals);
    EXPECT_EQ(a.attackArrivals, b.attackArrivals);
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_EQ(a.legitServed, b.legitServed);
    EXPECT_EQ(a.legitFailed, b.legitFailed);
    EXPECT_EQ(a.legitGaveUp, b.legitGaveUp);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.attackExecuted, b.attackExecuted);
    EXPECT_EQ(a.probesServed, b.probesServed);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.sheds, b.sheds);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.legitP50, b.legitP50);
    EXPECT_EQ(a.legitP99, b.legitP99);
    EXPECT_EQ(a.timeIn, b.timeIn);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.fullCycles, b.fullCycles);
    EXPECT_EQ(a.bpEngagements, b.bpEngagements);
    EXPECT_EQ(a.requestsToRevival, b.requestsToRevival);
    EXPECT_EQ(a.adversaryMoves, b.adversaryMoves);
    EXPECT_EQ(a.adversaryRequests, b.adversaryRequests);
    EXPECT_EQ(a.reinfections, b.reinfections);
    EXPECT_EQ(a.timeToReinfection, b.timeToReinfection);
    EXPECT_EQ(a.proactiveRestores, b.proactiveRestores);
    EXPECT_EQ(a.recoveryP99, b.recoveryP99);
    EXPECT_EQ(a.domainRewinds, b.domainRewinds);
    EXPECT_EQ(a.dormantAfterRewind, b.dormantAfterRewind);
}

core::NodeConfig
stormNode()
{
    core::NodeConfig node;
    node.system.physMemBytes = 64ULL * 1024 * 1024;
    node.system.consecutiveFailureThreshold = 4;
    node.resilience.queueBound = 6;
    node.resilience.fifoHighWater = 24;
    node.resilience.degradeViolations = 2;
    node.resilience.quarantineFailStreak = 2;
    node.resilience.healServedStreak = 3;
    return node;
}

resilience::StormReport
runMonolith(const resilience::StormPlan &plan)
{
    core::IndraSystem sys(stormNode());
    sys.boot();
    std::size_t slot =
        sys.deployService(net::daemonByName("httpd"));
    return sys.runStorm(slot, plan);
}

resilience::StormReport
runStepped(const resilience::StormPlan &plan, Cycles window)
{
    core::IndraSystem sys(stormNode());
    sys.boot();
    std::size_t slot =
        sys.deployService(net::daemonByName("httpd"));
    core::NodeHandle node(sys, slot, plan);
    Tick bound = 0;
    while (true) {
        bound = saturatingAdd(bound, window);
        if (!node.advanceTo(bound))
            break;
    }
    EXPECT_TRUE(node.idle());
    EXPECT_EQ(maxTick, node.nextPendingTick());
    return node.finish();
}

TEST(NodeHandle, SteppingEqualsRunStormStaticStorm)
{
    resilience::StormPlan plan;
    plan.seed = 5;
    plan.legitRequests = 40;
    plan.legitRatePerMCycle = 2.0;
    plan.attackRatePerMCycle = 6.0;
    plan.burstLen = 3;
    plan.deadline = 1000000;
    resilience::StormReport mono = runMonolith(plan);
    // Window placement must be invisible: tiny, medium, and huge
    // stepping quanta all reproduce the monolithic report exactly.
    for (Cycles window : {50000u, 1048576u, 1u << 30}) {
        resilience::StormReport stepped = runStepped(plan, window);
        expectReportsEqual(mono, stepped);
    }
}

TEST(NodeHandle, SteppingEqualsRunStormAdaptiveAdversary)
{
    resilience::StormPlan plan;
    plan.seed = 9;
    plan.legitRequests = 30;
    plan.legitRatePerMCycle = 1.5;
    plan.deadline = 2000000;
    plan.adversary.armed = true;
    plan.adversary.strategy = adversary::AdversaryStrategy::Reinfect;
    plan.adversary.budget = 20;
    plan.adversary.burstLen = 4;
    plan.adversary.baseGap = 400000;
    plan.adversary.payload = net::AttackKind::StackSmash;
    plan.adversary.reinfectDelay = 100000;
    resilience::StormReport mono = runMonolith(plan);
    for (Cycles window : {100000u, 3000000u}) {
        resilience::StormReport stepped = runStepped(plan, window);
        expectReportsEqual(mono, stepped);
    }
}

TEST(NodeHandle, InjectedArrivalsAreServed)
{
    resilience::StormPlan plan;
    plan.seed = 3;
    plan.legitRequests = 0; // balancer-fed node
    plan.legitRatePerMCycle = 1.0;
    plan.horizon = 10000000;
    plan.deadline = 2000000;

    // A disarmed node (no guard): this test pins the inject/drain
    // mechanics, so nothing may shed. Keep the service fast relative
    // to the 300k-cycle injection spacing so the queue never builds.
    core::NodeConfig nc;
    nc.system.physMemBytes = 64ULL * 1024 * 1024;
    core::IndraSystem sys(nc);
    sys.boot();
    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25000;
    std::size_t slot = sys.deployService(profile);
    core::NodeHandle node(sys, slot, plan);
    node.collectEvents(true);
    for (int i = 0; i < 10; ++i) {
        net::ServiceRequest req;
        req.attack = net::AttackKind::None;
        req.clientClass = net::ClientClass::Standard;
        node.inject(static_cast<Tick>(100000 + i * 300000), req);
    }
    while (node.advanceTo(saturatingAdd(node.now(), 1000000))) {
    }
    std::vector<core::NodeEvent> events = node.drainEvents();
    resilience::StormReport rep = node.finish();
    EXPECT_EQ(10u, rep.legitArrivals);
    EXPECT_EQ(10u, rep.legitServed);
    std::uint64_t served = 0;
    Tick last = 0;
    for (const core::NodeEvent &ev : events) {
        EXPECT_GE(ev.tick, last);
        last = ev.tick;
        if (ev.legit && !ev.probe &&
            ev.status == net::RequestStatus::Served)
            ++served;
    }
    EXPECT_EQ(10u, served);
}

TEST(NodeHandle, StallDelaysTheNodeClock)
{
    resilience::StormPlan plan;
    plan.seed = 3;
    plan.legitRequests = 0;
    plan.legitRatePerMCycle = 1.0;
    plan.horizon = 1000000;

    core::IndraSystem sys(stormNode());
    sys.boot();
    std::size_t slot =
        sys.deployService(net::daemonByName("httpd"));
    core::NodeHandle node(sys, slot, plan);
    Tick before = node.now();
    node.stall(123456);
    EXPECT_GE(node.now(), before + 123456);
}

// -------------------------------------------------------- ClusterSim

cluster::ClusterReport
runSmallCluster(unsigned jobs)
{
    core::NodeConfig node = stormNode();
    node.system.macroCheckpointPeriod = 10;
    node.system.rejuvenationCycles = 2000000;

    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRatePerMCycle = 1.0;
    plan.deadline = 8000000;
    plan.probePeriod = 50000;
    plan.adversary.armed = true;
    plan.adversary.strategy = adversary::AdversaryStrategy::Reinfect;
    plan.adversary.budget = 10;
    plan.adversary.burstLen = 4;
    plan.adversary.baseGap = 500000;
    plan.adversary.payload = net::AttackKind::StackSmash;
    plan.adversary.reinfectDelay = 100000;

    cluster::ClusterConfig cc;
    cc.nodes = 4;
    cc.poolSlots = 2;
    cc.users = 5000;
    cc.requests = 300;
    cc.arrivalRatePerMCycle = 4.0;
    cc.link.ratePerMCycle = 40.0;

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25000;

    cluster::ClusterSim sim(node, plan, cc, profile);
    harness::ParallelSweep sweep(jobs);
    return sim.run(sweep);
}

TEST(ClusterSim, BitIdenticalAcrossJobs)
{
    cluster::ClusterReport serial = runSmallCluster(1);
    cluster::ClusterReport parallel = runSmallCluster(8);

    EXPECT_EQ(serial.nodeArrivals, parallel.nodeArrivals);
    EXPECT_EQ(serial.rounds, parallel.rounds);
    EXPECT_EQ(serial.endTick, parallel.endTick);
    EXPECT_EQ(serial.legitArrivals, parallel.legitArrivals);
    EXPECT_EQ(serial.legitServed, parallel.legitServed);
    EXPECT_EQ(serial.shedTotal, parallel.shedTotal);
    EXPECT_EQ(serial.attackArrivals, parallel.attackArrivals);
    EXPECT_EQ(serial.legitP50, parallel.legitP50);
    EXPECT_EQ(serial.legitP99, parallel.legitP99);
    EXPECT_EQ(serial.recoveryP99, parallel.recoveryP99);
    EXPECT_EQ(serial.poolGrants, parallel.poolGrants);
    EXPECT_EQ(serial.poolQueuedGrants, parallel.poolQueuedGrants);
    EXPECT_EQ(serial.poolWaitTotal, parallel.poolWaitTotal);
    EXPECT_EQ(serial.doorbells, parallel.doorbells);
    ASSERT_EQ(serial.nodeReports.size(), parallel.nodeReports.size());
    for (std::size_t i = 0; i < serial.nodeReports.size(); ++i)
        expectReportsEqual(serial.nodeReports[i],
                           parallel.nodeReports[i]);
}

TEST(ClusterSim, LoadReachesEveryNodeAndPoolArbitrates)
{
    cluster::ClusterReport rep = runSmallCluster(2);
    EXPECT_EQ(4u, rep.nodes);
    EXPECT_EQ(300u, rep.legitArrivals);
    for (std::uint64_t n : rep.nodeArrivals)
        EXPECT_GT(n, 0u);
    EXPECT_GT(rep.legitServed, 0u);
    EXPECT_GT(rep.attackArrivals, 0u);
    EXPECT_GT(rep.poolGrants, 0u);
    EXPECT_GT(rep.doorbells, 0u);
    EXPECT_GT(rep.goodput(), 0.0);
    EXPECT_GE(rep.arrivalImbalance(), 1.0);
}

} // anonymous namespace
