/**
 * @file
 * Tests for the parallel experiment harness: the ThreadPool, the
 * ParallelSweep runner, the --jobs knob, and — the key contract — that
 * a parallel sweep over real IndraSystem cells is bit-identical to the
 * serial one. Built as its own binary labeled "harness" in ctest so it
 * can run under -DINDRA_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/system.hh"
#include "harness/parallel_sweep.hh"
#include "harness/thread_pool.hh"
#include "net/client.hh"
#include "net/daemon_profile.hh"
#include "sim/config_reader.hh"
#include "sim/logging.hh"

using namespace indra;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    harness::ThreadPool pool(4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { hits.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    harness::ThreadPool pool(2);
    std::atomic<int> hits{0};
    pool.submit([&] { hits.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(hits.load(), 1);
    pool.submit([&] { hits.fetch_add(1); });
    pool.submit([&] { hits.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(hits.load(), 3);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    harness::ThreadPool pool(2);
    pool.wait();  // nothing submitted; must not hang
    EXPECT_EQ(pool.size(), 2u);
}

TEST(ParallelSweep, ResolvesZeroJobsToHardware)
{
    harness::ParallelSweep sweep(0);
    EXPECT_GE(sweep.jobs(), 1u);
    EXPECT_EQ(harness::resolveJobs(5), 5u);
}

TEST(ParallelSweep, ResultsComeBackInCellOrder)
{
    harness::ParallelSweep sweep(8);
    auto out = sweep.run(64, [](std::size_t i) {
        return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ParallelSweep, SerialPathRunsInOrderOnCallingThread)
{
    harness::ParallelSweep sweep(1);
    std::vector<std::size_t> order;  // safe: jobs=1 never spawns
    auto out = sweep.run(10, [&](std::size_t i) {
        order.push_back(i);
        return i;
    });
    std::vector<std::size_t> expect(10);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
    EXPECT_EQ(out, expect);
}

TEST(ParallelSweep, CellExceptionPropagates)
{
    harness::ParallelSweep sweep(4);
    EXPECT_THROW(sweep.run(16,
                           [](std::size_t i) {
                               if (i == 7)
                                   throw std::runtime_error("cell 7");
                               return i;
                           }),
                 std::runtime_error);
}

TEST(ParseJobs, ExtractsAndStripsEveryForm)
{
    std::vector<std::string> args = {"daemon=httpd", "--jobs", "3",
                                     "requests=4"};
    EXPECT_EQ(parseJobs(args), 3u);
    EXPECT_EQ(args, (std::vector<std::string>{"daemon=httpd",
                                              "requests=4"}));

    args = {"--jobs=6"};
    EXPECT_EQ(parseJobs(args), 6u);
    EXPECT_TRUE(args.empty());

    args = {"jobs=2", "stats=1"};
    EXPECT_EQ(parseJobs(args), 2u);
    EXPECT_EQ(args, (std::vector<std::string>{"stats=1"}));
}

TEST(ParseJobs, UnsetMeansZero)
{
    unsetenv("INDRA_JOBS");
    std::vector<std::string> args = {"daemon=httpd"};
    EXPECT_EQ(parseJobs(args), 0u);
}

TEST(ParseJobs, RejectsNegativeAndAbsurdCounts)
{
    unsetenv("INDRA_JOBS");
    std::vector<std::string> neg = {"--jobs", "-2"};
    EXPECT_DEATH(parseJobs(neg), "not a valid worker count");
    std::vector<std::string> huge = {"--jobs=99999"};
    EXPECT_DEATH(parseJobs(huge), "out of range");
    setenv("INDRA_JOBS", "-1", 1);
    std::vector<std::string> none = {"daemon=httpd"};
    EXPECT_DEATH(parseJobs(none), "not a valid worker count");
    unsetenv("INDRA_JOBS");
}

TEST(ParseJobs, EnvironmentFallbackAndCliOverride)
{
    setenv("INDRA_JOBS", "5", 1);
    std::vector<std::string> args = {"daemon=httpd"};
    EXPECT_EQ(parseJobs(args), 5u);
    args = {"--jobs", "2"};
    EXPECT_EQ(parseJobs(args), 2u);
    unsetenv("INDRA_JOBS");
}

namespace
{

/** A compact, exact fingerprint of one experiment cell's run. */
struct CellResult
{
    std::vector<std::uint64_t> seqs;
    std::vector<std::string> statuses;
    std::vector<Tick> starts;
    std::vector<Tick> ends;

    bool
    operator==(const CellResult &o) const
    {
        return seqs == o.seqs && statuses == o.statuses &&
            starts == o.starts && ends == o.ends;
    }
};

/**
 * One shared-nothing experiment cell: boots a fresh IndraSystem from
 * a cell-specific config and runs a script with periodic attacks —
 * covering core, monitor, checkpoint, and recovery code under
 * concurrent execution.
 */
CellResult
runCell(std::size_t i)
{
    const auto &daemons = net::standardDaemons();
    const auto &profile = daemons[i % daemons.size()];

    SystemConfig cfg;
    cfg.rngSeed = 1 + i / daemons.size();

    core::IndraSystem sys(cfg);
    sys.boot();
    std::size_t slot = sys.deployService(profile);
    auto script = net::ClientScript::periodicAttack(
        6, net::AttackKind::StackSmash, 3);
    auto outcomes = sys.runScript(script, slot);

    CellResult r;
    for (const auto &o : outcomes) {
        r.seqs.push_back(o.seq);
        r.statuses.push_back(net::requestStatusName(o.status));
        r.starts.push_back(o.startTick);
        r.ends.push_back(o.endTick);
    }
    return r;
}

} // anonymous namespace

/**
 * The determinism contract of the harness: a jobs=8 sweep over twelve
 * full-system cells produces results identical — tick for tick — to
 * the jobs=1 serial path. This is the test to run under
 * -DINDRA_SANITIZE=thread (ctest -L harness).
 */
TEST(ParallelSweep, ParallelEqualsSerialOnRealSystems)
{
    setLogVerbosity(0);
    const std::size_t cells = 12;

    harness::ParallelSweep serial(1);
    auto expected = serial.run(cells, runCell);

    harness::ParallelSweep parallel(8);
    auto actual = parallel.run(cells, runCell);

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < cells; ++i)
        EXPECT_TRUE(actual[i] == expected[i]) << "cell " << i;

    // And a second parallel pass is stable against the first.
    auto again = parallel.run(cells, runCell);
    for (std::size_t i = 0; i < cells; ++i)
        EXPECT_TRUE(again[i] == expected[i]) << "cell " << i;
}

/** Concurrent warn()/inform() must not tear or race (TSAN target). */
TEST(Logging, ConcurrentLoggingIsSafe)
{
    setLogVerbosity(0);  // keep the test output quiet; still locks
    harness::ParallelSweep sweep(8);
    auto out = sweep.run(64, [](std::size_t i) {
        warn("harness log stress ", i);
        inform("harness log stress ", i);
        setLogVerbosity(0);
        return logVerbosity();
    });
    EXPECT_EQ(out.size(), 64u);
}
