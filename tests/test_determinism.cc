/** @file End-to-end determinism and cross-configuration sanity: the
 * properties the benches rely on. */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/logging.hh"
#include "test_util.hh"

using namespace indra;
using core::IndraSystem;

namespace
{

SystemConfig
cfgWith(std::uint64_t seed)
{
    SystemConfig cfg = testutil::smallConfig();
    cfg.physMemBytes = 128ULL * 1024 * 1024;
    cfg.rngSeed = seed;
    return cfg;
}

std::vector<net::RequestOutcome>
run(const SystemConfig &cfg, std::uint64_t requests,
    net::AttackKind kind = net::AttackKind::None,
    std::uint64_t period = 0)
{
    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 20000;
    IndraSystem sys(cfg);
    sys.boot();
    std::size_t slot = sys.deployService(profile);
    auto script = period
        ? net::ClientScript::periodicAttack(requests, kind, period)
        : net::ClientScript::benign(requests);
    return sys.runScript(script, slot);
}

} // anonymous namespace

TEST(Determinism, SameSeedSameTicks)
{
    auto a = run(cfgWith(42), 6, net::AttackKind::DosFlood, 3);
    auto b = run(cfgWith(42), 6, net::AttackKind::DosFlood, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].startTick, b[i].startTick) << i;
        EXPECT_EQ(a[i].endTick, b[i].endTick) << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions) << i;
        EXPECT_EQ(a[i].status, b[i].status) << i;
    }
}

TEST(Determinism, DifferentSeedsDifferentStreams)
{
    auto a = run(cfgWith(1), 3);
    auto b = run(cfgWith(2), 3);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].endTick != b[i].endTick ||
            a[i].instructions != b[i].instructions) {
            any_diff = true;
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(ShapeSanity, DeltaBeatsPageCopyOnTheSameWorkload)
{
    setLogVerbosity(0);
    SystemConfig none = cfgWith(3);
    none.monitorEnabled = false;
    none.checkpointScheme = CheckpointScheme::None;
    SystemConfig delta = none;
    delta.checkpointScheme = CheckpointScheme::DeltaBackup;
    SystemConfig paged = none;
    paged.checkpointScheme = CheckpointScheme::VirtualCheckpoint;

    auto t = [&](const SystemConfig &c) {
        double sum = 0;
        for (const auto &o : run(c, 5))
            sum += static_cast<double>(o.responseTime());
        return sum;
    };
    double t_none = t(none);
    double t_delta = t(delta);
    double t_paged = t(paged);
    EXPECT_GE(t_delta, t_none);
    EXPECT_GT(t_paged, t_delta);  // the paper's headline crossover
    // Delta overhead is a small fraction of page-copy overhead.
    EXPECT_LT(t_delta - t_none, 0.5 * (t_paged - t_none));
}

TEST(ShapeSanity, SmallFifoIsSlower)
{
    setLogVerbosity(0);
    SystemConfig small = cfgWith(4);
    small.checkpointScheme = CheckpointScheme::None;
    small.traceFifoEntries = 4;
    SystemConfig big = small;
    big.traceFifoEntries = 64;

    auto t = [&](const SystemConfig &c) {
        double sum = 0;
        for (const auto &o : run(c, 5))
            sum += static_cast<double>(o.responseTime());
        return sum;
    };
    EXPECT_GT(t(small), t(big));
}

TEST(ShapeSanity, SharedResurrectorCostsMoreWithMoreCores)
{
    setLogVerbosity(0);
    SystemConfig one = cfgWith(5);
    one.checkpointScheme = CheckpointScheme::None;
    one.sharedResurrector = true;
    one.numResurrectees = 1;
    SystemConfig four = one;
    four.numResurrectees = 4;

    auto t = [&](const SystemConfig &c) {
        double sum = 0;
        for (const auto &o : run(c, 4))
            sum += static_cast<double>(o.responseTime());
        return sum;
    };
    EXPECT_GT(t(four), t(one));
}
