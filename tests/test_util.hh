/**
 * @file
 * Shared fixtures for the INDRA test suite: a small SystemConfig and
 * a MemoryRig bundling physical memory, an address space, and a
 * hierarchy — the substrate the checkpoint-engine and OS tests need.
 */

#ifndef INDRA_TESTS_TEST_UTIL_HH
#define INDRA_TESTS_TEST_UTIL_HH

#include <cstring>
#include <memory>
#include <vector>

#include "mem/bus.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "mem/watchdog.hh"
#include "os/address_space.hh"
#include "os/process.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace indra::testutil
{

/** A config sized for fast tests (smaller phys mem, small caches). */
inline SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.physMemBytes = 64ULL * 1024 * 1024;
    cfg.rngSeed = 7;
    return cfg;
}

/**
 * Functional + timing memory substrate for one process, without the
 * core or kernel on top.
 */
struct MemoryRig
{
    explicit MemoryRig(const SystemConfig &cfg_in = smallConfig(),
                       bool with_watchdog = false)
        : cfg(cfg_in), stats("test"),
          phys(cfg.physMemBytes, cfg.pageBytes),
          bus(cfg.busRatio(), cfg.busWidthBytes, stats),
          dram(cfg.dram, cfg.busRatio(), cfg.busWidthBytes, stats)
    {
        if (with_watchdog)
            watchdog = std::make_unique<mem::MemWatchdog>(stats);
        context = std::make_unique<os::ProcessContext>(1, "test-proc");
        space = std::make_unique<os::AddressSpace>(
            1, phys, cfg.pageBytes, watchdog.get(), 1);
        hierarchy = std::make_unique<mem::MemHierarchy>(
            cfg, 1, Privilege::Low, *space, watchdog.get(), bus, dram,
            stats);
    }

    /** Write @p value at virtual @p vaddr (functional only). */
    void
    poke64(Addr vaddr, std::uint64_t value)
    {
        Vpn vpn = vaddr / cfg.pageBytes;
        Pfn pfn = space->translate(1, vpn);
        phys.write64(pfn,
                     static_cast<std::uint32_t>(vaddr % cfg.pageBytes),
                     value);
    }

    /** Read the 64-bit value at virtual @p vaddr (functional only). */
    std::uint64_t
    peek64(Addr vaddr)
    {
        Vpn vpn = vaddr / cfg.pageBytes;
        Pfn pfn = space->translate(1, vpn);
        return phys.read64(
            pfn, static_cast<std::uint32_t>(vaddr % cfg.pageBytes));
    }

    SystemConfig cfg;
    stats::StatGroup stats;
    mem::PhysicalMemory phys;
    mem::MemoryBus bus;
    mem::DramModel dram;
    std::unique_ptr<mem::MemWatchdog> watchdog;
    std::unique_ptr<os::ProcessContext> context;
    std::unique_ptr<os::AddressSpace> space;
    std::unique_ptr<mem::MemHierarchy> hierarchy;
};

} // namespace indra::testutil

#endif // INDRA_TESTS_TEST_UTIL_HH
