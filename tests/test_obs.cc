/**
 * @file
 * Tests for the observability layer: the TraceLog ring, the trace
 * sinks (JSONL / Chrome trace_event), the StatSink visitors, and the
 * end-to-end contracts the benches rely on — fixed-seed determinism
 * of the event stream, observation-only tracing (attaching a log
 * never changes simulation results), and full event-kind coverage of
 * a fault-composed storm.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "faults/fault_plan.hh"
#include "harness/parallel_sweep.hh"
#include "net/daemon_profile.hh"
#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/stat_sinks.hh"
#include "obs/trace_log.hh"
#include "obs/trace_sinks.hh"
#include "resilience/resilience_config.hh"
#include "resilience/storm.hh"
#include "sim/stats.hh"

using namespace indra;
using obs::EventKind;
using obs::TraceEvent;
using obs::TraceLog;

// ============================================================ TraceLog

TEST(TraceLog, EmitAndReadBack)
{
    TraceLog log(8);
    log.emit(100, EventKind::MonitorViolation, 2, 7, 0x4000);
    log.emit(150, EventKind::MicroRecovery, 2, 1);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.at(0).tick, 100u);
    EXPECT_EQ(log.at(0).kind, EventKind::MonitorViolation);
    EXPECT_EQ(log.at(0).source, 2u);
    EXPECT_EQ(log.at(0).a0, 7u);
    EXPECT_EQ(log.at(0).a1, 0x4000u);
    EXPECT_EQ(log.at(1).kind, EventKind::MicroRecovery);
    EXPECT_EQ(log.countOf(EventKind::MicroRecovery), 1u);
    EXPECT_EQ(log.countOf(EventKind::Shed), 0u);
}

TEST(TraceLog, RingWrapsAndCountsDrops)
{
    TraceLog log(4);
    for (Tick t = 0; t < 10; ++t)
        log.emit(t, EventKind::Shed, 0, t);
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.emitted(), 10u);
    EXPECT_EQ(log.dropped(), 6u);
    // Oldest-first iteration over the surviving tail.
    EXPECT_EQ(log.at(0).tick, 6u);
    EXPECT_EQ(log.at(3).tick, 9u);
}

TEST(TraceLog, SetNowIsMonotonicAndDrivesEmitNow)
{
    TraceLog log(8);
    log.setNow(500);
    log.setNow(200); // must not move time backwards
    EXPECT_EQ(log.now(), 500u);
    log.emitNow(EventKind::FaultInjected, 0, 3);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.at(0).tick, 500u);
}

TEST(TraceLog, ClearResetsEverything)
{
    TraceLog log(2);
    log.setNow(10);
    for (int i = 0; i < 5; ++i)
        log.emit(i, EventKind::Shed, 0);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.emitted(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    EXPECT_EQ(log.now(), 0u);
}

TEST(TraceLog, EveryKindHasAName)
{
    std::set<std::string> names;
    for (std::size_t k = 0; k < obs::eventKindCount; ++k) {
        std::string name =
            obs::eventKindName(static_cast<EventKind>(k));
        EXPECT_FALSE(name.empty());
        names.insert(name);
    }
    // Names are distinct (a duplicate would alias two kinds in every
    // exported trace).
    EXPECT_EQ(names.size(), obs::eventKindCount);
}

// ========================================================= trace sinks

namespace
{

/** Minimal scanner for one-object-per-line JSON: find "key":value. */
std::string
jsonField(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    auto pos = line.find(needle);
    if (pos == std::string::npos)
        return "";
    pos += needle.size();
    auto end = pos;
    if (line[pos] == '"') {
        end = line.find('"', pos + 1);
        return line.substr(pos + 1, end - pos - 1);
    }
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    return line.substr(pos, end - pos);
}

} // anonymous namespace

TEST(TraceSinks, JsonlRoundTrip)
{
    TraceLog log(8);
    log.emit(42, EventKind::MonitorViolation, 3, 5, 0x1234);
    log.emit(99, EventKind::HealthTransition, 1, 0, 1);

    std::ostringstream os;
    obs::renderJsonl(log, 7, os);
    std::istringstream is(os.str());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);

    EXPECT_EQ(jsonField(lines[0], "cell"), "7");
    EXPECT_EQ(jsonField(lines[0], "tick"), "42");
    EXPECT_EQ(jsonField(lines[0], "kind"), "monitor_violation");
    EXPECT_EQ(jsonField(lines[0], "src"), "3");
    EXPECT_EQ(jsonField(lines[1], "tick"), "99");
    EXPECT_EQ(jsonField(lines[1], "kind"), "health_transition");
}

TEST(TraceSinks, ChromeTraceIsWellFormed)
{
    TraceLog log(8);
    log.emit(10, EventKind::Shed, 0, 1, 2);
    log.emit(20, EventKind::MacroCapture, 0, 30, 4000);

    std::ostringstream os;
    obs::ChromeTraceWriter writer(os);
    writer.append(log, 0);
    writer.finish();
    std::string out = os.str();

    EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"shed\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"macro_capture\""),
              std::string::npos);
    // Balanced brackets: the file must load as a single JSON object.
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(TraceSinks, FormatNamesRoundTrip)
{
    EXPECT_EQ(obs::traceFormatFromName("jsonl"),
              obs::TraceFormat::Jsonl);
    EXPECT_EQ(obs::traceFormatFromName("chrome"),
              obs::TraceFormat::Chrome);
    EXPECT_STREQ(obs::traceFormatName(obs::TraceFormat::Jsonl),
                 "jsonl");
    EXPECT_STREQ(obs::traceFormatName(obs::TraceFormat::Chrome),
                 "chrome");
}

// ========================================================== stat sinks

namespace
{

/** A small tree exercising every stat type. */
struct SampleTree
{
    stats::StatGroup root{"sys"};
    stats::StatGroup child{root, "svc"};
    stats::Scalar count{child, "count", "things counted"};
    stats::Gauge level{child, "level", "a level"};
    stats::Distribution dist{child, "lat", "latency"};
    stats::Histogram hist{child, "occ", "occupancy", 10.0, 4};

    SampleTree()
    {
        count += 3;
        level.set(7.5);
        dist.sample(10);
        dist.sample(20);
        hist.sample(5);
        hist.sample(25);
        hist.sample(-1);
        hist.sample(1000);
    }
};

} // anonymous namespace

TEST(StatSinks, JsonIsValidAndComplete)
{
    SampleTree t;
    std::ostringstream os;
    obs::JsonStatSink sink(os);
    t.root.accept(sink);
    std::string out = os.str();

    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_NE(out.find("\"sys\":{"), std::string::npos);
    EXPECT_NE(out.find("\"svc\":{"), std::string::npos);
    EXPECT_NE(out.find("\"count\":3"), std::string::npos);
    EXPECT_NE(out.find("\"level\":7.5"), std::string::npos);
    // Distributions export their moments...
    EXPECT_NE(out.find("\"lat\":{"), std::string::npos);
    EXPECT_NE(out.find("\"mean\":15"), std::string::npos);
    // ...and histograms their buckets and the out-of-range tails.
    EXPECT_NE(out.find("\"occ\":{"), std::string::npos);
    EXPECT_NE(out.find("\"underflow\":1"), std::string::npos);
    EXPECT_NE(out.find("\"overflow\":1"), std::string::npos);
}

TEST(StatSinks, CsvHasHeaderAndQualifiedRows)
{
    SampleTree t;
    std::ostringstream os;
    obs::CsvStatSink sink(os);
    t.root.accept(sink);
    std::string out = os.str();

    EXPECT_EQ(out.find("stat,value\n"), 0u);
    EXPECT_NE(out.find("sys.svc.count,3"), std::string::npos);
    EXPECT_NE(out.find("sys.svc.lat.mean,15"), std::string::npos);
    EXPECT_NE(out.find("sys.svc.occ.underflow,1"), std::string::npos);
}

TEST(StatSinks, TextMatchesHistoricalShape)
{
    SampleTree t;
    std::ostringstream os;
    obs::TextStatSink sink(os);
    t.root.accept(sink);
    std::string out = os.str();

    // Qualified name, value column, "  # desc" trailer.
    EXPECT_NE(out.find("sys.svc.count"), std::string::npos);
    EXPECT_NE(out.find("# things counted"), std::string::npos);
    EXPECT_NE(out.find("sys.svc.lat.mean"), std::string::npos);
    // Histogram buckets render as half-open ranges; empty buckets
    // are skipped.
    EXPECT_NE(out.find("sys.svc.occ.bucket[0,10)"), std::string::npos);
    EXPECT_EQ(out.find("sys.svc.occ.bucket[10,20)"),
              std::string::npos);
}

TEST(StatSinks, JsonStringEscapesControls)
{
    std::ostringstream os;
    obs::jsonString(os, "a\"b\\c\nd\x01");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// ================================================ end-to-end contracts

namespace
{

SystemConfig
stormConfig()
{
    SystemConfig cfg;
    cfg.physMemBytes = 128ULL * 1024 * 1024;
    cfg.consecutiveFailureThreshold = 4;
    return cfg;
}

resilience::ResilienceConfig
armedConfig()
{
    resilience::ResilienceConfig rc;
    rc.queueBound = 6;
    rc.fifoHighWater = 48;
    rc.degradeViolations = 2;
    rc.quarantineFailStreak = 2;
    rc.healServedStreak = 3;
    return rc;
}

resilience::StormPlan
stormPlan()
{
    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRequests = 40;
    plan.legitRatePerMCycle = 1.0;
    plan.attackRatePerMCycle = 8.0;
    plan.burstLen = 4;
    plan.attackKind = net::AttackKind::StackSmash;
    plan.plantDormant = true;
    plan.deadline = 3'000'000;
    plan.probePeriod = 50'000;
    return plan;
}

/** Run the fixed-seed storm, streaming events into @p log. */
resilience::StormReport
runTracedStorm(TraceLog *log, const faults::FaultPlan &fplan = {})
{
    core::IndraSystem sys(stormConfig(), fplan, armedConfig());
    sys.attachTraceLog(log);
    sys.boot();
    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25'000;
    std::size_t slot = sys.deployService(profile);
    return sys.runStorm(slot, stormPlan());
}

std::string
renderedJsonl(const TraceLog &log, std::size_t cell)
{
    std::ostringstream os;
    obs::renderJsonl(log, cell, os);
    return os.str();
}

} // anonymous namespace

// Fixed-seed storms must produce the same event stream no matter how
// many sweep workers carry the cells — the property --trace relies on.
TEST(ObsEndToEnd, EventStreamDeterministicAcrossJobs)
{
    if (!obs::tracingCompiledIn())
        GTEST_SKIP() << "built with INDRA_OBS_TRACING=OFF";
    const std::size_t cells = 4;
    auto runAll = [&](unsigned jobs) {
        std::vector<std::unique_ptr<TraceLog>> logs;
        for (std::size_t i = 0; i < cells; ++i)
            logs.push_back(std::make_unique<TraceLog>());
        harness::ParallelSweep sweep(jobs);
        sweep.run(cells, [&](std::size_t i) {
            runTracedStorm(logs[i].get());
            return 0;
        });
        std::string all;
        for (std::size_t i = 0; i < cells; ++i)
            all += renderedJsonl(*logs[i], i);
        return all;
    };
    std::string serial = runAll(1);
    std::string parallel = runAll(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

// Attaching a trace log is observation-only: simulation results are
// bit-identical with and without one (the macro-level zero-cost
// contract; with INDRA_OBS_TRACING=OFF the emission code vanishes
// entirely).
TEST(ObsEndToEnd, TracingDoesNotPerturbSimulation)
{
    resilience::StormReport untraced = runTracedStorm(nullptr);
    TraceLog log;
    resilience::StormReport traced = runTracedStorm(&log);
    EXPECT_EQ(untraced.executed, traced.executed);
    EXPECT_EQ(untraced.legitServed, traced.legitServed);
    EXPECT_EQ(untraced.endTick, traced.endTick);
    EXPECT_EQ(untraced.sheds, traced.sheds);
    EXPECT_EQ(untraced.transitions, traced.transitions);
    EXPECT_EQ(untraced.fullCycles, traced.fullCycles);
}

// A storm composed with injected faults must light up the whole event
// taxonomy: verdicts, sheds, health transitions, the recovery ladder,
// checkpoint actions, fault injections, and FIFO watermarks.
TEST(ObsEndToEnd, FaultedStormCoversEventTaxonomy)
{
    if (!obs::tracingCompiledIn())
        GTEST_SKIP() << "built with INDRA_OBS_TRACING=OFF";
    // Corrupt macro images only: delta rollbacks still arm (so
    // RollbackArmed fires) while escalations past micro hit the
    // corrupted image (CorruptionDetected, Rejuvenation).
    faults::FaultPlan fplan =
        faults::FaultPlan::parse("macro-corrupt:1.0");

    SystemConfig cfg = stormConfig();
    // A tiny FIFO forces the high/low-water crossings.
    cfg.traceFifoEntries = 8;
    TraceLog log;
    core::IndraSystem sys(cfg, fplan, armedConfig());
    sys.attachTraceLog(&log);
    sys.boot();
    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25'000;
    std::size_t slot = sys.deployService(profile);
    sys.runStorm(slot, stormPlan());

    std::set<EventKind> kinds;
    for (std::size_t i = 0; i < log.size(); ++i)
        kinds.insert(log.at(i).kind);
    EXPECT_GE(kinds.size(), 8u)
        << "only " << kinds.size() << " distinct event kinds emitted";
    EXPECT_TRUE(kinds.count(EventKind::MonitorViolation));
    EXPECT_TRUE(kinds.count(EventKind::Shed));
    EXPECT_TRUE(kinds.count(EventKind::HealthTransition));
    EXPECT_TRUE(kinds.count(EventKind::MicroRecovery));
    EXPECT_TRUE(kinds.count(EventKind::RollbackArmed));
    EXPECT_TRUE(kinds.count(EventKind::FaultInjected));
    EXPECT_TRUE(kinds.count(EventKind::FifoHighWater));
    EXPECT_TRUE(kinds.count(EventKind::FifoLowWater));
}
