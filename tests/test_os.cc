/** @file Tests for the OS layer: process context, address space,
 * resources, and kernel syscall dispatch. */

#include <gtest/gtest.h>

#include "cpu/isa.hh"
#include "os/kernel.hh"
#include "test_util.hh"

using namespace indra;
using testutil::MemoryRig;

// ---------------------------------------------------- ProcessContext

TEST(ProcessContext, SnapshotRestoreRoundTrip)
{
    os::ProcessContext ctx(5, "svc");
    ctx.regs().pc = 0x1000;
    ctx.regs().sp = 0x7000;
    ctx.regs().gpr[3] = 77;
    ctx.incrementGts();
    ctx.incrementGts();
    auto snap = ctx.snapshot();

    ctx.regs().pc = 0xdead;
    ctx.regs().gpr[3] = 0;
    ctx.incrementGts();
    ctx.restore(snap);

    EXPECT_EQ(ctx.regs().pc, 0x1000u);
    EXPECT_EQ(ctx.regs().sp, 0x7000u);
    EXPECT_EQ(ctx.regs().gpr[3], 77u);
    EXPECT_EQ(ctx.gts(), 2u);
}

TEST(ProcessContext, GtsStartsAtZero)
{
    os::ProcessContext ctx(5, "svc");
    EXPECT_EQ(ctx.gts(), 0u);
    ctx.setGts(41);
    ctx.incrementGts();
    EXPECT_EQ(ctx.gts(), 42u);
}

// ------------------------------------------------------ AddressSpace

TEST(AddressSpace, MapTranslateUnmap)
{
    MemoryRig rig;
    Pfn pfn = rig.space->mapPage(100, os::Region::Data);
    EXPECT_EQ(rig.space->translate(1, 100), pfn);
    EXPECT_TRUE(rig.space->isMapped(100));
    rig.space->unmapPage(100);
    EXPECT_EQ(rig.space->translate(1, 100), invalidPfn);
}

TEST(AddressSpace, WrongPidDoesNotTranslate)
{
    MemoryRig rig;
    rig.space->mapPage(100, os::Region::Data);
    EXPECT_EQ(rig.space->translate(2, 100), invalidPfn);
}

TEST(AddressSpace, RegionAttributes)
{
    MemoryRig rig;
    rig.space->mapPage(1, os::Region::Code);
    rig.space->mapPage(2, os::Region::Data);
    rig.space->mapPage(3, os::Region::Stack);
    rig.space->mapPage(4, os::Region::DynCode);
    EXPECT_TRUE(rig.space->pageInfo(1).executable);
    EXPECT_FALSE(rig.space->pageInfo(2).executable);
    EXPECT_FALSE(rig.space->pageInfo(3).executable);
    EXPECT_TRUE(rig.space->pageInfo(4).executable);
}

TEST(AddressSpace, MapRegionMapsContiguousPages)
{
    MemoryRig rig;
    rig.space->mapRegion(0x10000, 4, os::Region::Heap);
    for (Vpn vpn = 0x10; vpn < 0x14; ++vpn)
        EXPECT_TRUE(rig.space->isMapped(vpn));
    EXPECT_EQ(rig.space->pageCount(), 4u);
}

TEST(AddressSpace, RemapPointsAtNewFrame)
{
    MemoryRig rig;
    Pfn original = rig.space->mapPage(9, os::Region::Data);
    Pfn fresh = rig.phys.allocFrame();
    rig.phys.write64(fresh, 0, 0xabc);
    Pfn old = rig.space->remapPage(9, fresh);
    EXPECT_EQ(old, original);
    EXPECT_EQ(rig.space->translate(1, 9), fresh);
    EXPECT_FALSE(rig.phys.isAllocated(old));
    EXPECT_EQ(rig.peek64(9 * 4096), 0xabcu);
}

TEST(AddressSpace, WatchdogGrantsFollowMapAndRemap)
{
    MemoryRig rig(testutil::smallConfig(), true);
    Pfn pfn = rig.space->mapPage(5, os::Region::Data);
    EXPECT_TRUE(rig.watchdog->isGranted(pfn, 1));
    Pfn fresh = rig.phys.allocFrame();
    rig.space->remapPage(5, fresh);
    EXPECT_TRUE(rig.watchdog->isGranted(fresh, 1));
    EXPECT_FALSE(rig.watchdog->isGranted(pfn, 1));
}

TEST(AddressSpace, DestructorFreesFrames)
{
    MemoryRig rig;
    std::uint64_t before = rig.phys.framesAllocated();
    {
        os::AddressSpace tmp(9, rig.phys, 4096, nullptr, 2);
        tmp.mapRegion(0, 16, os::Region::Data);
        EXPECT_EQ(rig.phys.framesAllocated(), before + 16);
    }
    EXPECT_EQ(rig.phys.framesAllocated(), before);
}

TEST(AddressSpaceDeath, DoubleMapPanics)
{
    MemoryRig rig;
    rig.space->mapPage(3, os::Region::Data);
    EXPECT_DEATH(rig.space->mapPage(3, os::Region::Data),
                 "already mapped");
}

// --------------------------------------------------- SystemResources

TEST(Resources, OpenCloseFiles)
{
    os::SystemResources res(1);
    std::int32_t fd1 = res.openFile("a");
    std::int32_t fd2 = res.openFile("b");
    EXPECT_NE(fd1, fd2);
    EXPECT_EQ(res.openFileCount(), 2u);
    EXPECT_TRUE(res.closeFile(fd1));
    EXPECT_FALSE(res.closeFile(fd1));
    EXPECT_EQ(res.openFileCount(), 1u);
}

TEST(Resources, CloseNewest)
{
    os::SystemResources res(1);
    std::int32_t fd1 = res.openFile("a");
    std::int32_t fd2 = res.openFile("b");
    EXPECT_TRUE(res.closeNewestFile());
    EXPECT_TRUE(res.isOpen(fd1));
    EXPECT_FALSE(res.isOpen(fd2));
}

TEST(Resources, RestoreClosesOnlyNewerFiles)
{
    MemoryRig rig;
    os::SystemResources res(1);
    std::int32_t before_fd = res.openFile("kept");
    auto snap = res.snapshot();
    res.openFile("doomed1");
    res.openFile("doomed2");
    auto actions = res.restoreTo(snap, *rig.space);
    EXPECT_EQ(actions.filesClosed, 2u);
    EXPECT_TRUE(res.isOpen(before_fd));
    EXPECT_EQ(res.openFileCount(), 1u);
}

TEST(Resources, RestoreKillsNewChildren)
{
    MemoryRig rig;
    os::SystemResources res(1);
    res.spawnChild();
    auto snap = res.snapshot();
    res.spawnChild();
    res.spawnChild();
    auto actions = res.restoreTo(snap, *rig.space);
    EXPECT_EQ(actions.childrenKilled, 2u);
    EXPECT_EQ(res.childCount(), 1u);
}

TEST(Resources, RestoreReclaimsHeapPages)
{
    MemoryRig rig;
    os::SystemResources res(1);
    res.growHeap(*rig.space, 2);
    auto snap = res.snapshot();
    res.growHeap(*rig.space, 3);
    EXPECT_EQ(res.heapPages(), 5u);
    std::uint64_t mapped_before = rig.space->pageCount();
    auto actions = res.restoreTo(snap, *rig.space);
    EXPECT_EQ(actions.pagesReclaimed, 3u);
    EXPECT_EQ(res.heapPages(), 2u);
    EXPECT_EQ(rig.space->pageCount(), mapped_before - 3);
}

TEST(Resources, AuditLogSurvivesRestore)
{
    MemoryRig rig;
    os::SystemResources res(1);
    auto snap = res.snapshot();
    res.appendLog("malicious request observed");
    res.restoreTo(snap, *rig.space);
    ASSERT_EQ(res.log().size(), 1u);
    EXPECT_EQ(res.log()[0], "malicious request observed");
}

TEST(Resources, HeapGrowsContiguously)
{
    MemoryRig rig;
    os::SystemResources res(1);
    Vpn first = res.growHeap(*rig.space, 2);
    Vpn second = res.growHeap(*rig.space, 1);
    EXPECT_EQ(second, first + 2);
}

// ------------------------------------------------------------ Kernel

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
        : rig(), kernel(rig.phys, rig.cfg.pageBytes, nullptr, rig.stats)
    {
        pid = kernel.createProcess("svc", 1);
    }

    cpu::SyscallResult
    sys(cpu::SyscallNo no, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        return kernel.syscall(0, pid,
                              static_cast<std::uint32_t>(no), a0, a1);
    }

    MemoryRig rig;
    os::Kernel kernel;
    Pid pid = 0;
};

TEST_F(KernelTest, CreateProcessAssignsDistinctPids)
{
    Pid other = kernel.createProcess("svc2", 2);
    EXPECT_NE(pid, other);
    EXPECT_TRUE(kernel.hasProcess(pid));
    EXPECT_TRUE(kernel.hasProcess(other));
}

TEST_F(KernelTest, RequestCheckpointIncrementsGts)
{
    EXPECT_EQ(kernel.process(pid).context->gts(), 0u);
    auto r = sys(cpu::SyscallNo::RequestCheckpoint);
    EXPECT_EQ(kernel.process(pid).context->gts(), 1u);
    EXPECT_EQ(r.value, 1u);
    EXPECT_GT(r.cycles, 0u);
}

TEST_F(KernelTest, OpenReturnsFd)
{
    auto r = sys(cpu::SyscallNo::OpenFile, 7);
    EXPECT_GE(r.value, 3u);
    EXPECT_EQ(kernel.process(pid).resources->openFileCount(), 1u);
}

TEST_F(KernelTest, CloseZeroClosesNewest)
{
    sys(cpu::SyscallNo::OpenFile, 1);
    sys(cpu::SyscallNo::OpenFile, 2);
    sys(cpu::SyscallNo::CloseFile, 0);
    EXPECT_EQ(kernel.process(pid).resources->openFileCount(), 1u);
}

TEST_F(KernelTest, SpawnChildTracked)
{
    sys(cpu::SyscallNo::SpawnChild);
    EXPECT_EQ(kernel.process(pid).resources->childCount(), 1u);
}

TEST_F(KernelTest, AllocPagesMapsHeap)
{
    auto r = sys(cpu::SyscallNo::AllocPages, 3);
    EXPECT_EQ(kernel.process(pid).resources->heapPages(), 3u);
    Vpn vpn = r.value / rig.cfg.pageBytes;
    EXPECT_TRUE(kernel.process(pid).space->isMapped(vpn));
}

TEST_F(KernelTest, CrashTerminates)
{
    auto r = sys(cpu::SyscallNo::Crash);
    EXPECT_TRUE(r.terminated);
}

TEST_F(KernelTest, WriteLogAppends)
{
    sys(cpu::SyscallNo::WriteLog, 5);
    EXPECT_EQ(kernel.process(pid).resources->log().size(), 1u);
}

TEST_F(KernelTest, ListenerReceivesRequestCheckpoint)
{
    struct Listener : os::KernelListener
    {
        int checkpoints = 0;
        Cycles
        onRequestCheckpoint(Tick, Pid) override
        {
            ++checkpoints;
            return 123;
        }
        void onDynCodeDeclared(Pid, Addr, std::uint64_t) override {}
    } listener;
    kernel.setListener(&listener);
    auto r = sys(cpu::SyscallNo::RequestCheckpoint);
    EXPECT_EQ(listener.checkpoints, 1);
    EXPECT_GE(r.cycles, 123u);
}

TEST_F(KernelTest, ListenerReceivesDynCode)
{
    struct Listener : os::KernelListener
    {
        Addr base = 0;
        std::uint64_t len = 0;
        Cycles onRequestCheckpoint(Tick, Pid) override { return 0; }
        void
        onDynCodeDeclared(Pid, Addr b, std::uint64_t l) override
        {
            base = b;
            len = l;
        }
    } listener;
    kernel.setListener(&listener);
    sys(cpu::SyscallNo::DeclareDynCode, 0x30000000, 8192);
    EXPECT_EQ(listener.base, 0x30000000u);
    EXPECT_EQ(listener.len, 8192u);
}

TEST_F(KernelTest, DestroyProcessFreesPages)
{
    std::uint64_t before = rig.phys.framesAllocated();
    Pid tmp = kernel.createProcess("tmp", 3);
    kernel.process(tmp).space->mapRegion(0, 8, os::Region::Data);
    kernel.destroyProcess(tmp);
    EXPECT_EQ(rig.phys.framesAllocated(), before);
    EXPECT_FALSE(kernel.hasProcess(tmp));
}
