/** @file Tests for the three baseline checkpoint engines of Table 3
 * and the macro (application) checkpoint. */

#include <gtest/gtest.h>

#include "checkpoint/delta_backup.hh"
#include "checkpoint/macro_ckpt.hh"
#include "checkpoint/policy.hh"
#include "checkpoint/software_ckpt.hh"
#include "checkpoint/update_log.hh"
#include "checkpoint/virtual_ckpt.hh"
#include "os/resources.hh"
#include "test_util.hh"

using namespace indra;
using testutil::MemoryRig;

namespace
{

constexpr Addr pageBase = 0x10000000;

/** Fixture template shared by all engines. */
template <typename Engine>
class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : rig(),
          engine(rig.cfg, *rig.context, *rig.space, rig.phys,
                 *rig.hierarchy, rig.stats)
    {
        rig.space->mapRegion(pageBase, 8, os::Region::Data);
    }

    Cycles
    store(Addr vaddr, std::uint64_t value)
    {
        Cycles c = engine.onStore(0, 1, vaddr, 8);
        rig.poke64(vaddr, value);
        return c;
    }

    void
    newRequest()
    {
        rig.context->incrementGts();
        engine.onRequestBegin(0);
    }

    MemoryRig rig;
    Engine engine;
};

using VirtualTest = EngineTest<ckpt::VirtualCheckpoint>;
using LogTest = EngineTest<ckpt::MemoryUpdateLog>;
using SoftwareTest = EngineTest<ckpt::SoftwareCheckpoint>;

} // anonymous namespace

// --------------------------------------------------- VirtualCheckpoint

TEST_F(VirtualTest, FirstWriteCopiesWholePage)
{
    newRequest();
    store(pageBase, 1);
    EXPECT_EQ(engine.pagesSavedThisEpoch(), 1u);
    EXPECT_EQ(engine.linesBackedUp(), 64u);  // full page
}

TEST_F(VirtualTest, SecondWriteSamePageFree)
{
    newRequest();
    Cycles c1 = store(pageBase, 1);
    Cycles c2 = store(pageBase + 8, 2);
    EXPECT_GT(c1, 0u);
    EXPECT_EQ(c2, 0u);
}

TEST_F(VirtualTest, FailureRestoresViaRemap)
{
    rig.poke64(pageBase, 0x600d);
    rig.poke64(pageBase + 1000, 0x601d);
    newRequest();
    store(pageBase, 0xbad);
    Cycles recovery = engine.onFailure(0);
    EXPECT_EQ(rig.peek64(pageBase), 0x600du);
    EXPECT_EQ(rig.peek64(pageBase + 1000), 0x601du);
    // Recovery is a translation fix-up, far cheaper than a page copy.
    EXPECT_LE(recovery, rig.cfg.pageRemapCycles);
}

TEST_F(VirtualTest, BackupCostDwarfsDeltaCost)
{
    MemoryRig rig2;
    rig2.space->mapRegion(pageBase, 8, os::Region::Data);
    ckpt::DeltaBackup delta(rig2.cfg, *rig2.context, *rig2.space,
                            rig2.phys, *rig2.hierarchy, rig2.stats);
    rig2.context->incrementGts();
    delta.onRequestBegin(0);
    Cycles delta_cost = delta.onStore(0, 1, pageBase, 8);

    newRequest();
    Cycles page_cost = store(pageBase, 1);
    EXPECT_GT(page_cost, delta_cost * 10);
}

TEST_F(VirtualTest, RetryAfterFailureSavesAgain)
{
    rig.poke64(pageBase, 0xa);
    newRequest();
    store(pageBase, 0xb);
    engine.onFailure(0);
    // Same epoch retry: the consumed backup must be re-created.
    store(pageBase, 0xc);
    engine.onFailure(0);
    EXPECT_EQ(rig.peek64(pageBase), 0xau);
}

// ----------------------------------------------------- MemoryUpdateLog

TEST_F(LogTest, EveryStoreLogged)
{
    newRequest();
    store(pageBase, 1);
    store(pageBase, 2);
    store(pageBase + 8, 3);
    EXPECT_EQ(engine.logSize(), 3u);
}

TEST_F(LogTest, AppendIsCheap)
{
    newRequest();
    EXPECT_LE(store(pageBase, 1), rig.cfg.logAppendCycles);
}

TEST_F(LogTest, UndoRestoresInReverseOrder)
{
    rig.poke64(pageBase, 0x0);
    newRequest();
    store(pageBase, 0x1);
    store(pageBase, 0x2);
    store(pageBase, 0x3);
    engine.onFailure(0);
    EXPECT_EQ(rig.peek64(pageBase), 0x0u);
    EXPECT_EQ(engine.logSize(), 0u);
}

TEST_F(LogTest, RecoveryCostScalesWithLogLength)
{
    newRequest();
    for (int i = 0; i < 100; ++i)
        store(pageBase + (i % 50) * 8, i);
    Cycles c = engine.onFailure(0);
    // At least the per-entry undo cost, plus log-line read traffic.
    EXPECT_GE(c, 100u * rig.cfg.logUndoCycles);
    // And it really scales: a 10x longer log costs much more.
    newRequest();
    for (int i = 0; i < 1000; ++i)
        store(pageBase + (i % 50) * 8, i);
    Cycles c10 = engine.onFailure(0);
    EXPECT_GT(c10, c * 5);
}

TEST_F(LogTest, SuccessTruncatesLog)
{
    newRequest();
    store(pageBase, 1);
    newRequest();
    EXPECT_EQ(engine.logSize(), 0u);
    // A failure now rolls back nothing.
    engine.onFailure(0);
    EXPECT_EQ(rig.peek64(pageBase), 1u);
}

TEST_F(LogTest, InterleavedPagesRestoredExactly)
{
    rig.poke64(pageBase, 0xa0);
    rig.poke64(pageBase + 4096, 0xb0);
    newRequest();
    store(pageBase, 0xa1);
    store(pageBase + 4096, 0xb1);
    store(pageBase, 0xa2);
    engine.onFailure(0);
    EXPECT_EQ(rig.peek64(pageBase), 0xa0u);
    EXPECT_EQ(rig.peek64(pageBase + 4096), 0xb0u);
}

// -------------------------------------------------- SoftwareCheckpoint

TEST_F(SoftwareTest, FirstWriteTakesProtFaultAndCopies)
{
    newRequest();
    Cycles c = store(pageBase, 1);
    EXPECT_GT(c, rig.cfg.writeProtectFaultCycles);
    EXPECT_EQ(engine.pagesSavedThisEpoch(), 1u);
}

TEST_F(SoftwareTest, SoftwareCopyCostsMoreThanHardware)
{
    MemoryRig rig2;
    rig2.space->mapRegion(pageBase, 8, os::Region::Data);
    ckpt::VirtualCheckpoint hw(rig2.cfg, *rig2.context, *rig2.space,
                               rig2.phys, *rig2.hierarchy, rig2.stats);
    rig2.context->incrementGts();
    hw.onRequestBegin(0);
    Cycles hw_cost = hw.onStore(0, 1, pageBase, 8);

    newRequest();
    EXPECT_GT(store(pageBase, 1), hw_cost);
}

TEST_F(SoftwareTest, FailureRestoresPages)
{
    rig.poke64(pageBase + 512, 0x7777);
    newRequest();
    store(pageBase + 512, 0x8888);
    engine.onFailure(0);
    EXPECT_EQ(rig.peek64(pageBase + 512), 0x7777u);
}

// ------------------------------------------------------------ factory

TEST(PolicyFactory, BuildsEveryScheme)
{
    MemoryRig rig;
    for (auto scheme :
         {CheckpointScheme::None, CheckpointScheme::DeltaBackup,
          CheckpointScheme::VirtualCheckpoint,
          CheckpointScheme::MemoryUpdateLog,
          CheckpointScheme::SoftwareCheckpoint}) {
        SystemConfig cfg = rig.cfg;
        cfg.checkpointScheme = scheme;
        stats::StatGroup group(
            std::string("f_") + checkpointSchemeName(scheme));
        auto p = ckpt::makePolicy(cfg, *rig.context, *rig.space,
                                  rig.phys, *rig.hierarchy, group);
        ASSERT_NE(p, nullptr);
    }
}

TEST(NullPolicy, DoesNothing)
{
    MemoryRig rig;
    ckpt::NullPolicy p(rig.cfg, *rig.context, *rig.space, rig.phys,
                       *rig.hierarchy, rig.stats);
    EXPECT_EQ(p.onStore(0, 1, pageBase, 8), 0u);
    EXPECT_EQ(p.onFailure(0), 0u);
    EXPECT_EQ(p.linesBackedUp(), 0u);
}

// --------------------------------------------------- MacroCheckpoint

TEST(MacroCkpt, CaptureRestoreMemoryAndContext)
{
    MemoryRig rig;
    rig.space->mapRegion(pageBase, 4, os::Region::Data);
    os::SystemResources res(1);
    ckpt::MacroCheckpoint macro(rig.cfg, rig.phys, *rig.hierarchy,
                                rig.stats);

    rig.poke64(pageBase, 0x1234);
    rig.context->regs().pc = 0x42;
    rig.context->setGts(9);
    std::int32_t fd = res.openFile("kept");
    macro.capture(0, *rig.context, *rig.space, res);

    rig.poke64(pageBase, 0x9999);
    rig.context->regs().pc = 0xffff;
    res.openFile("doomed");
    res.growHeap(*rig.space, 2);

    macro.restore(0, *rig.context, *rig.space, res);
    EXPECT_EQ(rig.peek64(pageBase), 0x1234u);
    EXPECT_EQ(rig.context->regs().pc, 0x42u);
    EXPECT_EQ(rig.context->gts(), 9u);
    EXPECT_TRUE(res.isOpen(fd));
    EXPECT_EQ(res.openFileCount(), 1u);
    EXPECT_EQ(res.heapPages(), 0u);
}

TEST(MacroCkpt, HasCheckpointFlag)
{
    MemoryRig rig;
    os::SystemResources res(1);
    ckpt::MacroCheckpoint macro(rig.cfg, rig.phys, *rig.hierarchy,
                                rig.stats);
    EXPECT_FALSE(macro.hasCheckpoint());
    macro.capture(0, *rig.context, *rig.space, res);
    EXPECT_TRUE(macro.hasCheckpoint());
}

TEST(MacroCkpt, RestoreWithoutCaptureIsRefused)
{
    MemoryRig rig;
    os::SystemResources res(1);
    ckpt::MacroCheckpoint macro(rig.cfg, rig.phys, *rig.hierarchy,
                                rig.stats);
    ckpt::MacroRestoreResult res2 =
        macro.restore(0, *rig.context, *rig.space, res);
    EXPECT_FALSE(res2.ok);
    EXPECT_EQ(macro.restoreFailures(), 1u);
    EXPECT_EQ(macro.restores(), 0u);
}

TEST(MacroCkpt, CapturesCostMoreThanDeltaArming)
{
    MemoryRig rig;
    rig.space->mapRegion(pageBase, 16, os::Region::Data);
    os::SystemResources res(1);
    ckpt::MacroCheckpoint macro(rig.cfg, rig.phys, *rig.hierarchy,
                                rig.stats);
    Cycles cost = macro.capture(0, *rig.context, *rig.space, res);
    EXPECT_GT(cost, 1000u);  // full-image software checkpoint is slow
}
