/** @file Tests for the differential-oracle checking layer: golden
 * reference models held against the production components, the
 * invariant registry, scenario JSON round-trips, the shrinker, and —
 * when the hooks are compiled in — the end-to-end oracle including
 * its own sensitivity (a planted rollback bug must be caught and
 * shrunk to a small reproducer that fails identically on any sweep
 * worker count). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.hh"
#include "check/invariants.hh"
#include "check/ref_models.hh"
#include "check/scenario.hh"
#include "checkpoint/policy.hh"
#include "core/system.hh"
#include "faults/fault_plan.hh"
#include "harness/parallel_sweep.hh"
#include "net/daemon_profile.hh"
#include "net/workload.hh"
#include "mem/trace_fifo.hh"
#include "obs/trace_log.hh"
#include "resilience/admission.hh"
#include "resilience/health.hh"
#include "sim/random.hh"
#include "test_util.hh"

using namespace indra;
using testutil::MemoryRig;

namespace
{

constexpr Addr pageBase = 0x10000000;

} // anonymous namespace

// ---------------------------------------------------------- RefMemory

TEST(RefMemory, CaptureCompareAndFirstMismatch)
{
    check::RefMemory ref(4096);
    std::vector<std::uint8_t> page(4096, 0xab);
    ref.capturePage(5, page);
    EXPECT_EQ(ref.pageCount(), 1u);
    EXPECT_FALSE(ref.comparePage(5, page).has_value());
    // A never-captured vpn has nothing to diverge from.
    EXPECT_FALSE(ref.comparePage(9, page).has_value());

    auto bad = page;
    bad[100] = 0x11;
    bad[200] = 0x22;
    auto mm = ref.comparePage(5, bad);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(mm->vpn, 5u);
    EXPECT_EQ(mm->offset, 100u);
    EXPECT_EQ(mm->expect, 0xab);
    EXPECT_EQ(mm->actual, 0x11);
    EXPECT_NE(mm->describe().find("0x64"), std::string::npos);
}

TEST(RefMemory, ShadowWritesAreLittleEndianAndZeroFill)
{
    check::RefMemory ref(4096);
    ref.write(5 * 4096 + 8, 0x1122334455667788ull, 8);
    EXPECT_EQ(ref.read(5 * 4096 + 8, 8), 0x1122334455667788ull);
    EXPECT_EQ(ref.read(5 * 4096 + 8, 1), 0x88u);
    EXPECT_EQ(ref.read(5 * 4096 + 9, 1), 0x77u);
    // Uncaptured pages read as zero.
    EXPECT_EQ(ref.read(7 * 4096, 8), 0u);
    // The shadow write materialized the page.
    EXPECT_EQ(ref.pageCount(), 1u);
    EXPECT_EQ(ref.read(5 * 4096, 8), 0u);
}

// ------------------------------------------------------------ RefFifo

TEST(RefFifo, MatchesTraceFifoOnRandomSchedules)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        stats::StatGroup group("fifo");
        mem::TraceFifo fifo(8, group);
        check::RefFifo ref(8);
        obs::TraceLog log;
        fifo.setTraceLog(&log, 0);

        Pcg32 rng(seed, 99);
        Tick tick = 0;
        for (int i = 0; i < 600; ++i) {
            tick += rng.nextBounded(30);
            Cycles cost = 1 + rng.nextBounded(40);
            mem::FifoPushResult real = fifo.push(tick, cost);
            check::RefFifo::PushResult model = ref.push(tick, cost);
            ASSERT_EQ(real.pushDoneTick, model.pushDone)
                << "push " << i << " seed " << seed;
            ASSERT_EQ(real.stallCycles, model.stall);
            ASSERT_EQ(real.serviceStartTick, model.serviceStart);
            ASSERT_EQ(real.serviceEndTick, model.serviceEnd);
            Tick probe = tick + rng.nextBounded(60);
            ASSERT_EQ(fifo.occupancyAt(probe), ref.occupancyAt(probe))
                << "occupancy probe at " << probe;
        }
        EXPECT_EQ(fifo.drainTick(), ref.drainTick());
        EXPECT_EQ(fifo.pushes(), ref.pushes());
#if INDRA_OBS_TRACING_ENABLED
        // Watermark crossings must agree with the traced events.
        EXPECT_EQ(log.countOf(obs::EventKind::FifoHighWater),
                  ref.highWaterCrossings());
        EXPECT_EQ(log.countOf(obs::EventKind::FifoLowWater),
                  ref.lowWaterCrossings());
#endif
    }
}

// The flat-ring FIFO must keep matching the reference once the ring
// has wrapped many times over (pushes >> capacity) — the regime where
// an off-by-one in head/count bookkeeping would first diverge — and
// through the saturation region near maxTick, where both timelines
// pin to the "never" sentinel instead of wrapping.
TEST(RefFifo, MatchesTraceFifoThroughWrapAndSaturation)
{
    stats::StatGroup group("fifo");
    mem::TraceFifo fifo(4, group);
    check::RefFifo ref(4);
    Pcg32 rng(11, 7);

    // Phase 1: thousands of pushes through a tiny ring.
    Tick tick = 0;
    for (int i = 0; i < 5000; ++i) {
        tick += rng.nextBounded(6);
        Cycles cost = 1 + rng.nextBounded(9);
        mem::FifoPushResult real = fifo.push(tick, cost);
        check::RefFifo::PushResult model = ref.push(tick, cost);
        ASSERT_EQ(real.serviceStartTick, model.serviceStart) << i;
        ASSERT_EQ(real.serviceEndTick, model.serviceEnd) << i;
        ASSERT_EQ(real.stallCycles, model.stall) << i;
        ASSERT_EQ(fifo.occupancyAt(tick), ref.occupancyAt(tick)) << i;
    }

    // Phase 2: jump to the edge of representable time.
    fifo.reset();
    ref.reset();
    Tick edge = maxTick - 200;
    for (int i = 0; i < 50; ++i) {
        edge = saturatingAdd(edge, rng.nextBounded(8));
        Cycles cost = 1 + rng.nextBounded(100);
        mem::FifoPushResult real = fifo.push(edge, cost);
        check::RefFifo::PushResult model = ref.push(edge, cost);
        ASSERT_EQ(real.serviceStartTick, model.serviceStart) << i;
        ASSERT_EQ(real.serviceEndTick, model.serviceEnd) << i;
        ASSERT_LE(real.serviceEndTick, maxTick) << i;
    }
    EXPECT_EQ(fifo.drainTick(), maxTick);
    EXPECT_EQ(ref.drainTick(), maxTick);
}

// --------------------------------------------------------- RefUndoLog

TEST(RefUndoLog, OldestValuePerAddressWins)
{
    check::RefUndoLog undo;
    undo.beginEpoch();
    undo.noteStore(0x1000, 111, 8);
    undo.noteStore(0x1000, 222, 8);
    undo.noteStore(0x1008, 5, 8);
    undo.noteStore(0x1000, 333, 8);
    EXPECT_EQ(undo.entryCount(), 2u);
    ASSERT_NE(undo.find(0x1000), nullptr);
    EXPECT_EQ(undo.find(0x1000)->value, 111u);
    EXPECT_EQ(undo.find(0x1008)->value, 5u);
    EXPECT_EQ(undo.find(0x2000), nullptr);
    undo.beginEpoch();
    EXPECT_EQ(undo.entryCount(), 0u);
}

// -------------------------------------------- update-log duplicates

/** Regression: replaying an epoch with several stores to the same
 * address must restore the *oldest* pre-store value, not an
 * intermediate one — the undo entries are replayed newest-to-oldest
 * so the oldest write lands last. */
TEST(UpdateLogDuplicates, ReplayRestoresOldestValue)
{
    MemoryRig rig;
    rig.cfg.checkpointScheme = CheckpointScheme::MemoryUpdateLog;
    rig.space->mapRegion(pageBase, 2, os::Region::Data);
    stats::StatGroup group("log");
    auto policy = ckpt::makePolicy(rig.cfg, *rig.context, *rig.space,
                                   rig.phys, *rig.hierarchy, group);

    Addr addr = pageBase + 64;
    Addr other = pageBase + 4096 + 8;
    rig.poke64(addr, 111);
    rig.poke64(other, 1000);
    rig.context->incrementGts();
    policy->onRequestBegin(0);

    policy->onStore(0, 1, addr, 8);
    rig.poke64(addr, 222);
    policy->onStore(0, 1, other, 8);
    rig.poke64(other, 2000);
    policy->onStore(0, 1, addr, 8);
    rig.poke64(addr, 333);
    policy->onStore(0, 1, addr, 8);
    rig.poke64(addr, 444);

    policy->onFailure(0);
    policy->drainRollback(0);
    EXPECT_EQ(rig.peek64(addr), 111u)
        << "duplicate-address replay must restore the oldest value";
    EXPECT_EQ(rig.peek64(other), 1000u);
}

/** Differential: the production update log against the sorted-map
 * reference under randomized duplicate-heavy store schedules. */
TEST(UpdateLogDuplicates, RandomizedReplayMatchesReferenceUndoLog)
{
    constexpr std::uint32_t numPages = 3;
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        MemoryRig rig;
        rig.cfg.checkpointScheme = CheckpointScheme::MemoryUpdateLog;
        rig.space->mapRegion(pageBase, numPages, os::Region::Data);
        stats::StatGroup group("log");
        auto policy = ckpt::makePolicy(rig.cfg, *rig.context,
                                       *rig.space, rig.phys,
                                       *rig.hierarchy, group);
        check::RefUndoLog undo;
        Pcg32 rng(seed, 1234);

        for (std::uint32_t p = 0; p < numPages; ++p) {
            for (std::uint32_t off = 0; off < 4096; off += 8)
                rig.poke64(pageBase + p * 4096 + off, p * 4096 + off);
        }

        for (int request = 0; request < 6; ++request) {
            rig.context->incrementGts();
            policy->onRequestBegin(0);
            undo.beginEpoch();

            // A small address pool makes duplicates the common case.
            int ops = 10 + static_cast<int>(rng.nextBounded(60));
            for (int i = 0; i < ops; ++i) {
                Addr addr = pageBase +
                    rng.nextBounded(numPages) * 4096 +
                    rng.nextBounded(16) * 8;
                undo.noteStore(addr, rig.peek64(addr), 8);
                policy->onStore(0, 1, addr, 8);
                rig.poke64(addr, rng.next());
            }

            policy->onFailure(0);
            policy->drainRollback(0);
            for (const auto &[addr, old] : undo.entries()) {
                ASSERT_EQ(rig.peek64(addr), old.value)
                    << "addr 0x" << std::hex << addr << std::dec
                    << " request " << request << " seed " << seed;
            }
        }
    }
}

// ------------------------------------- RefMemory engine equivalence

/** software_ckpt and virtual_ckpt run the *same* schedule (fixed
 * seed) and every rollback must land on the RefMemory image captured
 * at that epoch's begin. */
class RefMemoryEquivalence
    : public ::testing::TestWithParam<CheckpointScheme>
{
};

TEST_P(RefMemoryEquivalence, SameScheduleRestoresToEpochImage)
{
    constexpr std::uint32_t numPages = 4;
    MemoryRig rig;
    rig.cfg.checkpointScheme = GetParam();
    rig.space->mapRegion(pageBase, numPages, os::Region::Data);
    stats::StatGroup group("equiv");
    auto policy = ckpt::makePolicy(rig.cfg, *rig.context, *rig.space,
                                   rig.phys, *rig.hierarchy, group);
    check::RefMemory golden(rig.cfg.pageBytes);
    // Fixed seed: both schemes see the identical schedule.
    Pcg32 rng(4242, 7);

    for (std::uint32_t p = 0; p < numPages; ++p) {
        for (std::uint32_t off = 0; off < 4096; off += 8)
            rig.poke64(pageBase + p * 4096 + off, p * 100000 + off);
    }

    for (int request = 0; request < 10; ++request) {
        rig.context->incrementGts();
        policy->onRequestBegin(0);
        golden.clear();
        for (std::uint32_t p = 0; p < numPages; ++p) {
            Vpn vpn = pageBase / 4096 + p;
            golden.capturePage(
                vpn, rig.phys.snapshotFrame(rig.space->translate(1, vpn)));
        }

        int ops = 15 + static_cast<int>(rng.nextBounded(80));
        for (int i = 0; i < ops; ++i) {
            Addr addr = pageBase + rng.nextBounded(numPages) * 4096 +
                        rng.nextBounded(4096 / 8) * 8;
            policy->onStore(0, 1, addr, 8);
            rig.poke64(addr, rng.next());
        }

        if (rng.bernoulli(0.5)) {
            policy->onFailure(0);
            policy->drainRollback(0);
            for (std::uint32_t p = 0; p < numPages; ++p) {
                Vpn vpn = pageBase / 4096 + p;
                auto mm = golden.comparePage(
                    vpn,
                    rig.phys.snapshotFrame(rig.space->translate(1, vpn)));
                ASSERT_FALSE(mm.has_value())
                    << checkpointSchemeName(GetParam())
                    << " request " << request << ": " << mm->describe();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SoftwareAndVirtual, RefMemoryEquivalence,
    ::testing::Values(CheckpointScheme::SoftwareCheckpoint,
                      CheckpointScheme::VirtualCheckpoint),
    [](const auto &info) {
        return info.param == CheckpointScheme::SoftwareCheckpoint
                   ? "software"
                   : "virtual";
    });

// --------------------------------------------------------- invariants

TEST(HealthEdges, LegalAndIllegalTransitions)
{
    using resilience::HealthState;
    // Legal edges of the documented machine.
    EXPECT_TRUE(check::healthEdgeLegal(HealthState::Healthy,
                                       HealthState::Degraded));
    EXPECT_TRUE(check::healthEdgeLegal(HealthState::Degraded,
                                       HealthState::Quarantined));
    EXPECT_TRUE(check::healthEdgeLegal(HealthState::Degraded,
                                       HealthState::Healthy));
    EXPECT_TRUE(check::healthEdgeLegal(HealthState::Quarantined,
                                       HealthState::Degraded));
    EXPECT_TRUE(check::healthEdgeLegal(HealthState::Rejuvenating,
                                       HealthState::Healthy));
    // Rejuvenating is reachable from anywhere.
    for (auto from : {HealthState::Healthy, HealthState::Degraded,
                      HealthState::Quarantined,
                      HealthState::Rejuvenating}) {
        EXPECT_TRUE(check::healthEdgeLegal(
            from, HealthState::Rejuvenating));
    }
    // Skipping rungs is illegal.
    EXPECT_FALSE(check::healthEdgeLegal(HealthState::Healthy,
                                        HealthState::Quarantined));
    EXPECT_FALSE(check::healthEdgeLegal(HealthState::Quarantined,
                                        HealthState::Healthy));
    EXPECT_FALSE(check::healthEdgeLegal(HealthState::Rejuvenating,
                                        HealthState::Degraded));
}

TEST(TokenConservation, BucketLevelStaysWithinBounds)
{
    resilience::TokenBucket bucket(40.0, 10.0);
    Pcg32 rng(7, 3);
    Tick now = 0;
    for (int i = 0; i < 3000; ++i) {
        now += rng.nextBounded(100000);
        bucket.advance(now);
        ASSERT_GE(bucket.tokens(), -1e-6);
        ASSERT_LE(bucket.tokens(), bucket.burstDepth() + 1e-6);
        if (rng.bernoulli(0.7))
            bucket.tryTake(now, rng.bernoulli(0.5) ? 1.0 : 0.5);
        ASSERT_GE(bucket.tokens(), -1e-6);
        ASSERT_LE(bucket.tokens(), bucket.burstDepth() + 1e-6);
    }
}

TEST(InvariantRegistry, VacuousPassAndCustomFailure)
{
    check::InvariantRegistry reg;
    EXPECT_GE(reg.size(), 6u);

    // A context with every subject absent passes vacuously.
    std::vector<check::Violation> out;
    EXPECT_EQ(reg.evaluate(check::CheckContext{}, 5, 1, 2, out), 0u);
    EXPECT_TRUE(out.empty());

    reg.add(check::InvariantId::FifoModelConforms,
            [](const check::CheckContext &, std::string &detail) {
                detail = "doomed";
                return false;
            });
    EXPECT_EQ(reg.evaluate(check::CheckContext{}, 5, 1, 2, out), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].id, check::InvariantId::FifoModelConforms);
    EXPECT_EQ(out[0].detail, "doomed");
    EXPECT_EQ(out[0].tick, 5u);
    EXPECT_EQ(out[0].pid, 1u);
    EXPECT_EQ(out[0].epoch, 2u);
    EXPECT_NE(out[0].describe().find("fifo-model-conforms"),
              std::string::npos);
}

// ---------------------------------------------------------- scenarios

TEST(Scenario, JsonRoundTripPreservesEveryField)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        check::Scenario sc = check::makeScenario(seed);
        check::Scenario back = check::Scenario::fromJson(sc.toJson());
        EXPECT_EQ(back, sc) << "seed " << seed << ": " << sc.toJson();
    }
    check::Scenario planted = check::makePlantedScenario(3);
    EXPECT_EQ(check::Scenario::fromJson(planted.toJson()), planted);
}

TEST(Scenario, AdversaryFieldsRoundTrip)
{
    check::Scenario sc = check::makeScenario(1);
    sc.stormBurst = 4;
    sc.adversaryBudget = 32;
    sc.adversaryStrategy = adversary::AdversaryStrategy::Reinfect;
    sc.rejuvenationTrigger = resilience::RejuvenationTrigger::Suspicion;
    EXPECT_EQ(check::Scenario::fromJson(sc.toJson()), sc);
    EXPECT_NE(sc.describe().find("adv=reinfectx32"), std::string::npos);
    EXPECT_NE(sc.describe().find("rj=suspicion"), std::string::npos);
}

TEST(Scenario, PreAdversaryReproducersParseToDefaults)
{
    // Reproducer JSON written before the adversary existed carries
    // none of the new keys; it must parse to the classic precomputed
    // schedule with rejuvenation disarmed.
    check::Scenario sc = check::Scenario::fromJson(
        "{\"seed\": 7, \"daemon\": \"httpd\", \"storm_burst\": 4,"
        " \"steps\": [{\"attack\": \"benign\", \"repeat\": 3}]}");
    EXPECT_EQ(sc.seed, 7u);
    EXPECT_EQ(sc.stormBurst, 4u);
    EXPECT_EQ(sc.adversaryBudget, 0u);
    EXPECT_EQ(sc.adversaryStrategy, adversary::AdversaryStrategy::Fixed);
    EXPECT_EQ(sc.rejuvenationTrigger,
              resilience::RejuvenationTrigger::None);
}

TEST(Scenario, DerivationIsAPureFunctionOfTheSeed)
{
    for (std::uint64_t seed : {1u, 17u, 123u}) {
        EXPECT_EQ(check::makeScenario(seed), check::makeScenario(seed));
    }
    EXPECT_NE(check::makeScenario(1), check::makeScenario(2));
}

TEST(Scenario, FirstAttackEpochCountsRepeats)
{
    check::Scenario sc;
    sc.steps = {{net::AttackKind::None, 3},
                {net::AttackKind::StackSmash, 2}};
    EXPECT_EQ(sc.requestCount(), 5u);
    EXPECT_EQ(sc.firstAttackEpoch(), 4u);
    sc.steps = {{net::AttackKind::None, 2}};
    EXPECT_EQ(sc.firstAttackEpoch(), 0u);
}

// ----------------------------------------------------------- shrinker

TEST(Shrinker, MinimizesWhilePreservingTheInvariant)
{
    using net::AttackKind;
    check::Scenario sc;
    sc.guardArmed = true;
    sc.stormBurst = 8;
    sc.stormAttackRate = 20.0;
    sc.faults = {{faults::FaultKind::TraceDrop, 0.05, 0},
                 {faults::FaultKind::DeltaFlip, 0.15, 0}};
    sc.steps = {{AttackKind::None, 3},       {AttackKind::StackSmash, 2},
                {AttackKind::CodeInjection, 1}, {AttackKind::None, 2},
                {AttackKind::StackSmash, 4}, {AttackKind::Dormant, 2}};

    auto smashCount = [](const check::Scenario &s) {
        std::uint64_t n = 0;
        for (const auto &step : s.steps) {
            if (step.attack == AttackKind::StackSmash)
                n += step.repeat;
        }
        return n;
    };
    // Synthetic failure: at least three stack smashes trip it.
    check::ScenarioRunFn run = [&](const check::Scenario &s) {
        check::ScenarioVerdict v;
        v.requests = s.requestCount();
        if (smashCount(s) >= 3) {
            v.violated = true;
            v.invariant = check::InvariantId::TokenConservation;
        }
        return v;
    };

    check::ScenarioVerdict orig = run(sc);
    ASSERT_TRUE(orig.violated);
    check::ShrinkResult res =
        check::shrinkScenario(sc, orig, run, 500);
    EXPECT_TRUE(res.verdict.violated);
    EXPECT_EQ(res.verdict.invariant,
              check::InvariantId::TokenConservation);
    EXPECT_EQ(smashCount(res.scenario), 3u)
        << "shrink overshot the failure threshold";
    EXPECT_EQ(res.scenario.requestCount(), 3u)
        << "irrelevant schedule steps survived shrinking";
    EXPECT_TRUE(res.scenario.faults.empty());
    EXPECT_EQ(res.scenario.stormBurst, 0u);
    EXPECT_FALSE(res.scenario.guardArmed);
    EXPECT_GT(res.runsUsed, 0u);
    EXPECT_LE(res.runsUsed, 500u);
}

TEST(Shrinker, PassingScenarioIsReturnedUnchanged)
{
    check::Scenario sc = check::makeScenario(9);
    check::ScenarioVerdict orig; // not violated
    std::uint64_t calls = 0;
    check::ScenarioRunFn run = [&](const check::Scenario &) {
        ++calls;
        return check::ScenarioVerdict{};
    };
    check::ShrinkResult res = check::shrinkScenario(sc, orig, run, 50);
    EXPECT_EQ(res.scenario, sc);
    EXPECT_LE(res.runsUsed, 50u);
}

// -------------------------------------------------------- end to end

#if INDRA_CHECK_ENABLED

TEST(OracleEndToEnd, CleanScenariosProduceNoViolations)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        check::Scenario sc = check::makeScenario(seed);
        check::ScenarioVerdict v = check::runScenario(sc);
        EXPECT_FALSE(v.violated)
            << sc.describe() << ": " << v.detail;
        EXPECT_GT(v.checks, 0u) << sc.describe();
        if (sc.stormBurst)
            EXPECT_GT(v.requests, sc.requestCount());
        else
            EXPECT_EQ(v.requests, sc.requestCount());
    }
}

TEST(OracleEndToEnd, PlantedRollbackBugIsCaughtAndShrunk)
{
    check::Scenario sc = check::makePlantedScenario(1);
    check::ScenarioVerdict v = check::runScenario(sc);
    ASSERT_TRUE(v.violated) << "the oracle missed the planted bug";
    EXPECT_EQ(v.invariant, check::InvariantId::MemoryRestoreExact);

    check::ShrinkResult res =
        check::shrinkScenario(sc, v, check::runScenario, 120);
    EXPECT_TRUE(res.verdict.violated);
    EXPECT_EQ(res.verdict.invariant,
              check::InvariantId::MemoryRestoreExact);
    EXPECT_LE(res.scenario.requestCount(), 10u)
        << "reproducer did not shrink: "
        << res.scenario.toJson();
}

/** The re-infection invariant's own sensitivity: dormant damage that
 * is still planted when a rejuvenation claims to have completed must
 * be flagged as RejuvenationClearsDormant. */
TEST(OracleEndToEnd, DormantDamageSurvivingRejuvenationIsFlagged)
{
    SystemConfig cfg;
    cfg.physMemBytes = 64ULL * 1024 * 1024;
    faults::FaultPlan plan;
    resilience::ResilienceConfig rcfg;
    core::IndraSystem sys(cfg, plan, rcfg);
    check::SystemChecker checker(sys);
    sys.attachChecker(&checker);
    sys.boot();
    std::size_t slot = sys.deployService(net::daemonByName("httpd"));
    Pid pid = sys.slot(slot).pid;

    net::ServiceRequest req;
    req.seq = 1;
    req.attack = net::AttackKind::Dormant;
    sys.processRequest(slot, req);
    ASSERT_TRUE(sys.appOf(pid)->hasDormantDamage());
    ASSERT_TRUE(checker.ok());

    // Drive the recovery hook directly, claiming a rejuvenation
    // completed while the plant is still live — the heal the real
    // ladder performs is deliberately skipped here.
    checker.onRecovered(1000, pid, check::RestoreLevel::Rejuvenation);
    bool flagged = false;
    for (const check::Violation &v : checker.violations())
        flagged |= v.id == check::InvariantId::RejuvenationClearsDormant;
    EXPECT_TRUE(flagged);
}

/** The shrunk reproducer JSON re-runs identically — same invariant,
 * same epoch, same tick — whether evaluated serially or on an
 * 8-worker sweep. */
TEST(OracleEndToEnd, ReproducerFailsIdenticallyAcrossSweepWorkers)
{
    check::Scenario sc = check::makePlantedScenario(2);
    check::ScenarioVerdict v = check::runScenario(sc);
    ASSERT_TRUE(v.violated);
    check::ShrinkResult res =
        check::shrinkScenario(sc, v, check::runScenario, 120);
    std::string json = res.scenario.toJson();

    auto runCells = [&](unsigned jobs) {
        harness::ParallelSweep sweep(jobs);
        return sweep.run(8, [&](std::size_t) {
            return check::runScenario(check::Scenario::fromJson(json));
        });
    };
    std::vector<check::ScenarioVerdict> serial = runCells(1);
    std::vector<check::ScenarioVerdict> parallel = runCells(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        for (const check::ScenarioVerdict *got :
             {&serial[i], &parallel[i]}) {
            EXPECT_TRUE(got->violated);
            EXPECT_EQ(got->invariant, res.verdict.invariant);
            EXPECT_EQ(got->epoch, res.verdict.epoch);
            EXPECT_EQ(got->tick, res.verdict.tick);
            EXPECT_EQ(got->detail, res.verdict.detail);
            EXPECT_EQ(got->violations, res.verdict.violations);
        }
    }
}

#else // !INDRA_CHECK_ENABLED

/** The zero-cost-when-off contract: with the hooks compiled out a
 * scenario still runs, but the oracle never sees a boundary. */
TEST(OracleEndToEnd, HooksCompiledOutMeansNoChecks)
{
    check::ScenarioVerdict v =
        check::runScenario(check::makeScenario(1));
    EXPECT_EQ(v.checks, 0u);
    EXPECT_EQ(v.violations, 0u);
    EXPECT_FALSE(v.violated);
    EXPECT_GT(v.requests, 0u);
}

#endif // INDRA_CHECK_ENABLED
