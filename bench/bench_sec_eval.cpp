/**
 * @file
 * Section 4.1 security evaluation: launch the documented exploit
 * scenarios (CAN-2003-0651, VU#196945, CAN-2003-0466, CAN-2004-0640,
 * the NT OOB/teardrop DoS class, and a dormant plant) against their
 * daemons and verify INDRA detects and recovers, with availability
 * for well-behaved clients preserved.
 */

#include "bench_util.hh"

#include "net/exploit.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig cfg;
    cfg.consecutiveFailureThreshold = 2;
    benchutil::printHeader(
        "Security evaluation (Section 4.1): documented exploits", cfg);

    std::cout << std::left << std::setw(18) << "exploit"
              << std::setw(10) << "daemon"
              << std::setw(18) << "violation"
              << std::setw(22) << "outcome"
              << "availability\n";

    bool all_ok = true;
    for (const auto &scenario : net::documentedExploits()) {
        net::DaemonProfile profile = net::daemonByName(scenario.daemon);
        profile.instrPerRequest =
            std::min<std::uint64_t>(profile.instrPerRequest, 120000);

        core::IndraSystem sys(cfg);
        sys.boot();
        std::size_t slot = sys.deployService(profile);

        // 2 warm requests, the exploit, then 6 more benign requests
        // (which for the dormant plant include the surfacing crash
        // and the hybrid macro recovery).
        auto script = net::ClientScript::benign(9);
        script[2].attack = scenario.kind;
        auto outcomes = sys.runScript(script, slot);
        auto report = net::AvailabilityReport::build(outcomes);

        const auto &bad = outcomes[2];
        bool recovered = report.lost == 0;
        all_ok = all_ok && recovered;
        std::cout << std::left << std::setw(18) << scenario.id
                  << std::setw(10) << scenario.daemon
                  << std::setw(18)
                  << mon::violationName(bad.violation)
                  << std::setw(22)
                  << net::requestStatusName(bad.status)
                  << std::fixed << std::setprecision(3)
                  << report.availability() << "\n";
    }
    std::cout << (all_ok
                      ? "\nall exploits detected/absorbed; no request "
                        "lost (paper: INDRA detects and recovers)"
                      : "\nSOME SCENARIO LOST SERVICE")
              << std::endl;
    return all_ok ? 0 : 1;
}
