/**
 * @file
 * Section 4.1 security evaluation: launch the documented exploit
 * scenarios (CAN-2003-0651, VU#196945, CAN-2003-0466, CAN-2004-0640,
 * the NT OOB/teardrop DoS class, and a dormant plant) against their
 * daemons and verify INDRA detects and recovers, with availability
 * for well-behaved clients preserved.
 */

#include "bench_util.hh"

#include "net/exploit.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_sec_eval",
                            "Security evaluation (Section 4.1): documented exploits");
    auto sweep = cli.parse(argc, argv);
    SystemConfig cfg;
    cfg.consecutiveFailureThreshold = 2;
    benchutil::printHeader(
        "Security evaluation (Section 4.1): documented exploits", cfg);

    std::cout << std::left << std::setw(18) << "exploit"
              << std::setw(10) << "daemon"
              << std::setw(18) << "violation"
              << std::setw(22) << "outcome"
              << "availability\n";

    const auto &scenarios = net::documentedExploits();
    benchutil::ObsCollector collector("bench_sec_eval", cli.obs());
    collector.resize(scenarios.size());
    struct Row
    {
        net::RequestOutcome bad;
        net::AvailabilityReport report;
    };
    auto rows = sweep.run(scenarios.size(), [&](std::size_t i) {
        const auto &scenario = scenarios[i];
        net::DaemonProfile profile = net::daemonByName(scenario.daemon);
        profile.instrPerRequest =
            std::min<std::uint64_t>(profile.instrPerRequest, 120000);

        core::IndraSystem sys(core::NodeConfig{cfg});
        sys.attachTraceLog(collector.traceFor(i));
        sys.boot();
        std::size_t slot = sys.deployService(profile);

        // 2 warm requests, the exploit, then 6 more benign requests
        // (which for the dormant plant include the surfacing crash
        // and the hybrid macro recovery).
        auto script = net::ClientScript::benign(9);
        script[2].attack = scenario.kind;
        auto outcomes = sys.runScript(script, slot);
        collector.snapshot(i, scenario.id, sys.rootStats());
        return Row{outcomes[2],
                   net::AvailabilityReport::build(outcomes)};
    });
    bool all_ok = true;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto &scenario = scenarios[i];
        const auto &report = rows[i].report;
        bool recovered = report.lost == 0;
        all_ok = all_ok && recovered;
        std::cout << std::left << std::setw(18) << scenario.id
                  << std::setw(10) << scenario.daemon
                  << std::setw(18)
                  << mon::violationName(rows[i].bad.violation)
                  << std::setw(22)
                  << net::requestStatusName(rows[i].bad.status)
                  << std::fixed << std::setprecision(3)
                  << report.availability() << "\n";
    }
    std::cout << (all_ok
                      ? "\nall exploits detected/absorbed; no request "
                        "lost (paper: INDRA detects and recovers)"
                      : "\nSOME SCENARIO LOST SERVICE")
              << std::endl;
    collector.write();
    return all_ok ? 0 : 1;
}
