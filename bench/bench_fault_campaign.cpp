/**
 * @file
 * Fault campaign: sweep injected component failures (fault kind x
 * rate x seed) across daemon profiles and measure how the detection
 * and recovery machinery degrades — the dependability claim of
 * Sections 3.3.2-3.3.3 exercised under adversarial component failure
 * instead of the usual perfect-component assumption.
 *
 * Every cell is a pure function of (config, FaultPlan, script): the
 * injector draws from per-kind PCG32 streams and the sweep cells
 * share nothing, so the table is bit-identical for any --jobs count.
 *
 * Reported per cell:
 *   injected      faults the injector actually fired
 *   corrupt_det   backup corruption events caught by checksum
 *   det_rate      attacks detected by the monitor / attacks sent
 *   recov_rate    answered requests / total (availability)
 *   micro/macro/rejuv   recoveries by escalation level
 *   esc           escalations (integrity + macro-restore failures)
 *   req_to_rev    mean requests from a failure to the next served one
 *
 * Usage: bench_fault_campaign [--jobs N] [--smoke]
 * --smoke runs a single-seed single-daemon subset (one rate per
 * kind) sized for CI and the sanitizer builds.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "faults/fault_plan.hh"

using namespace indra;
using faults::FaultKind;
using faults::FaultPlan;

namespace
{

struct CampaignCell
{
    std::string label;
    std::uint64_t injected = 0;
    std::uint64_t corruptDetected = 0;
    double detectionRate = 0;
    double recoveryRate = 0;
    std::uint64_t micro = 0;
    std::uint64_t macro = 0;
    std::uint64_t rejuv = 0;
    std::uint64_t escalations = 0;
    double reqToRevival = 0;
};

/** Mean requests from each failed request to the next served one. */
double
meanRequestsToRevival(const std::vector<net::RequestOutcome> &outcomes)
{
    double sum = 0;
    std::uint64_t events = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].status == net::RequestStatus::Served)
            continue;
        std::size_t j = i + 1;
        while (j < outcomes.size() &&
               outcomes[j].status != net::RequestStatus::Served)
            ++j;
        sum += static_cast<double>(j - i);
        ++events;
    }
    return events ? sum / static_cast<double>(events) : 0.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli(
        "bench_fault_campaign",
        "Fault campaign: component failures vs the recovery ladder");
    bool smoke = false;
    cli.flag("--smoke", "single-seed single-daemon CI-sized subset",
             &smoke);
    auto sweep = cli.parse(argc, argv);

    SystemConfig base;
    base.physMemBytes = 128ULL * 1024 * 1024;
    base.consecutiveFailureThreshold = 2;
    base.macroCheckpointPeriod = 10;

    const auto &kinds = faults::allFaultKinds();
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.5}
              : std::vector<double>{0.05, 0.5};
    const std::vector<std::uint64_t> seeds =
        smoke ? std::vector<std::uint64_t>{1}
              : std::vector<std::uint64_t>{1, 2};
    const std::vector<std::string> daemons =
        smoke ? std::vector<std::string>{"httpd"}
              : std::vector<std::string>{"httpd", "bind"};
    const std::uint64_t requests = smoke ? 20 : 60;

    benchutil::printHeader(
        "Fault campaign: component failures vs the recovery ladder",
        base);
    std::cout << std::left << std::setw(30) << "cell"
              << std::right << std::setw(9) << "injected"
              << std::setw(9) << "corrupt"
              << std::setw(10) << "det_rate"
              << std::setw(11) << "recov_rate"
              << std::setw(7) << "micro"
              << std::setw(7) << "macro"
              << std::setw(7) << "rejuv"
              << std::setw(5) << "esc"
              << std::setw(12) << "req_to_rev" << "\n";

    std::size_t cells_n =
        kinds.size() * rates.size() * seeds.size() * daemons.size();
    benchutil::ObsCollector collector("bench_fault_campaign",
                                      cli.obs());
    collector.resize(cells_n);

    auto cells = sweep.run(cells_n, [&](std::size_t i) {
        std::size_t di = i % daemons.size();
        std::size_t rest = i / daemons.size();
        std::size_t si = rest % seeds.size();
        rest /= seeds.size();
        std::size_t ri = rest % rates.size();
        FaultKind kind = kinds[rest / rates.size()];

        SystemConfig cfg = base;
        // The update log is the only engine with log entries to flip;
        // every other kind runs against the paper's delta backup.
        cfg.checkpointScheme = kind == FaultKind::LogFlip
            ? CheckpointScheme::MemoryUpdateLog
            : CheckpointScheme::DeltaBackup;

        FaultPlan plan;
        // MonitorDelay needs a magnitude: half a million cycles.
        plan.add(kind, rates[ri],
                 kind == FaultKind::MonitorDelay ? 500000 : 0);
        plan.setSeed(seeds[si]);

        net::DaemonProfile profile = net::daemonByName(daemons[di]);
        profile.instrPerRequest = 25000;

        core::IndraSystem sys(core::NodeConfig{cfg, plan});
        sys.attachTraceLog(collector.traceFor(i));
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        auto outcomes = sys.runScript(
            net::ClientScript::randomMix(
                requests, 0.3,
                {net::AttackKind::StackSmash,
                 net::AttackKind::CodeInjection,
                 net::AttackKind::DosFlood, net::AttackKind::Dormant},
                seeds[si] * 7919 + i),
            slot);

        core::ServiceSlot &s = sys.slot(slot);
        CampaignCell cell;
        cell.label = std::string(faults::faultKindName(kind)) + ":" +
                     (rates[ri] == 0.5 ? "0.50" : "0.05") + ":s" +
                     std::to_string(seeds[si]) + ":" + daemons[di];
        cell.injected = sys.faultInjector()->totalInjected();
        cell.corruptDetected = s.policy->corruptionDetected() +
                               s.macro->corruptionDetected();

        // An attack counts as detected when its outcome carries a
        // monitor violation — that survives escalation to macro or
        // rejuvenation, and excludes benign false positives (which
        // degraded trace transport can produce).
        std::uint64_t attacks = 0, detected = 0;
        for (const auto &o : outcomes) {
            if (o.attack == net::AttackKind::None)
                continue;
            ++attacks;
            detected += (o.violation != mon::Violation::None);
        }
        cell.detectionRate = attacks
            ? static_cast<double>(detected) /
                  static_cast<double>(attacks)
            : 0.0;

        auto rep = net::AvailabilityReport::build(outcomes);
        cell.recoveryRate = rep.availability();
        cell.micro = rep.recovered;
        cell.macro = rep.macroRecovered;
        cell.rejuv = rep.rejuvenated;
        cell.escalations = s.recovery->integrityEscalations() +
                           s.recovery->macroRestoreFailures() +
                           s.recovery->missingSnapshotRecoveries();
        cell.reqToRevival = meanRequestsToRevival(outcomes);
        collector.snapshot(i, cell.label, sys.rootStats());
        return cell;
    });

    for (const CampaignCell &c : cells) {
        std::cout << std::left << std::setw(30) << c.label
                  << std::right << std::setw(9) << c.injected
                  << std::setw(9) << c.corruptDetected
                  << std::setw(10) << std::fixed << std::setprecision(3)
                  << c.detectionRate
                  << std::setw(11) << c.recoveryRate
                  << std::setw(7) << c.micro
                  << std::setw(7) << c.macro
                  << std::setw(7) << c.rejuv
                  << std::setw(5) << c.escalations
                  << std::setw(12) << std::setprecision(2)
                  << c.reqToRevival << "\n";
    }

    // Campaign-wide roll-up: did the storage-corruption kinds achieve
    // full detection, and was every escalation edge exercised?
    std::uint64_t tot_inj = 0, tot_macro = 0, tot_rejuv = 0;
    for (const CampaignCell &c : cells) {
        tot_inj += c.injected;
        tot_macro += c.macro;
        tot_rejuv += c.rejuv;
    }
    std::cout << "\ntotal injected " << tot_inj
              << ", macro recoveries " << tot_macro
              << ", rejuvenations " << tot_rejuv << "\n";
    collector.write();
    return 0;
}
