/**
 * @file
 * Figure 16: full-INDRA service response-time slowdown, normalized to
 * an unprotected system. Left column: monitoring + delta backup.
 * Right column: additionally a rollback for every other request.
 *
 * Paper shape: modest slowdowns (~1.0-1.5x) everywhere except bind,
 * which exceeds 2x under rollback-every-other-request because its
 * requests are short (~150k instructions) and write densely.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig16_backup_rollback",
                            "Figure 16: slowdown of monitor+backup and rollback every other request");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;
    SystemConfig indra_cfg;  // monitor + delta backup (defaults)

    benchutil::printHeader(
        "Figure 16: slowdown of monitor+backup and +rollback every "
        "other request",
        indra_cfg);

    benchutil::printCols({"mon+backup", "+rollback/2"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig16_backup_rollback",
                                      cli.obs());
    collector.resize(daemons.size());
    struct Row { double backup, rollback; };
    auto rows = sweep.run(daemons.size(), [&](std::size_t i) {
        const auto &profile = daemons[i];
        auto off = benchutil::runBenign(core::NodeConfig{base}, profile, 2, 8);

        auto on = benchutil::runBenign(core::NodeConfig{indra_cfg}, profile, 2, 8);
        double backup = on.totalResponse() / off.totalResponse();

        // Every other request is a DoS-style malicious request whose
        // damage INDRA must roll back. The service-time cost of the
        // attack traffic and the recovery is borne by the legitimate
        // clients queued behind it, so normalize total busy time per
        // benign request against the unprotected benign baseline.
        auto attack_script = net::ClientScript::periodicAttack(
            16, net::AttackKind::DosFlood, 2);
        for (auto &r : attack_script)
            r.seq += 2;
        auto rb = benchutil::runScript(core::NodeConfig{indra_cfg}, profile, 2,
                                       attack_script,
                                       collector.traceFor(i));
        collector.snapshot(i, profile.name,
                           rb.system->rootStats());
        double rollback = (rb.totalResponse() / 8.0) /
            (off.totalResponse() / 8.0);
        return Row{backup, rollback};
    });
    double s1 = 0, s2 = 0;
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name,
                            {rows[i].backup, rows[i].rollback});
        s1 += rows[i].backup;
        s2 += rows[i].rollback;
    }
    std::size_t n = daemons.size();
    benchutil::printRow("average", {s1 / n, s2 / n});
    std::cout << "\npaper: ~1.0-1.5x overall; bind the >2x outlier "
                 "under frequent rollback"
              << std::endl;
    collector.write();
    return 0;
}
