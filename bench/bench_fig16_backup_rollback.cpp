/**
 * @file
 * Figure 16: full-INDRA service response-time slowdown, normalized to
 * an unprotected system. Left column: monitoring + delta backup.
 * Right column: additionally a rollback for every other request.
 *
 * Paper shape: modest slowdowns (~1.0-1.5x) everywhere except bind,
 * which exceeds 2x under rollback-every-other-request because its
 * requests are short (~150k instructions) and write densely.
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;
    SystemConfig indra_cfg;  // monitor + delta backup (defaults)

    benchutil::printHeader(
        "Figure 16: slowdown of monitor+backup and +rollback every "
        "other request",
        indra_cfg);

    benchutil::printCols({"mon+backup", "+rollback/2"});
    double s1 = 0, s2 = 0;
    for (const auto &profile : net::standardDaemons()) {
        auto off = benchutil::runBenign(base, profile, 2, 8);

        auto on = benchutil::runBenign(indra_cfg, profile, 2, 8);
        double backup = on.totalResponse() / off.totalResponse();

        // Every other request is a DoS-style malicious request whose
        // damage INDRA must roll back. The service-time cost of the
        // attack traffic and the recovery is borne by the legitimate
        // clients queued behind it, so normalize total busy time per
        // benign request against the unprotected benign baseline.
        auto attack_script = net::ClientScript::periodicAttack(
            16, net::AttackKind::DosFlood, 2);
        for (auto &r : attack_script)
            r.seq += 2;
        auto rb = benchutil::runScript(indra_cfg, profile, 2,
                                       attack_script);
        double rollback = (rb.totalResponse() / 8.0) /
            (off.totalResponse() / 8.0);

        benchutil::printRow(profile.name, {backup, rollback});
        s1 += backup;
        s2 += rollback;
    }
    std::size_t n = net::standardDaemons().size();
    benchutil::printRow("average", {s1 / n, s2 / n});
    std::cout << "\npaper: ~1.0-1.5x overall; bind the >2x outlier "
                 "under frequent rollback"
              << std::endl;
    return 0;
}
