/**
 * @file
 * Google-benchmark microbenchmarks of INDRA's hot hardware paths:
 * the delta-backup store hook, the filter CAM lookup, the per-page
 * line bitvectors, the trace-FIFO push, and the cache model itself.
 * These measure *simulator* throughput (wall clock), complementing
 * the cycle-accurate tables the other benches print.
 */

#include <benchmark/benchmark.h>

#include "checkpoint/bitvec.hh"
#include "checkpoint/delta_backup.hh"
#include "cpu/filter_cam.hh"
#include "mem/cache.hh"
#include "mem/trace_fifo.hh"
#include "sim/random.hh"

#include "../tests/test_util.hh"

using namespace indra;

namespace
{

void
BM_DeltaStoreHook(benchmark::State &state)
{
    testutil::MemoryRig rig;
    rig.space->mapRegion(0x10000000, 64, os::Region::Data);
    ckpt::DeltaBackup engine(rig.cfg, *rig.context, *rig.space,
                             rig.phys, *rig.hierarchy, rig.stats);
    rig.context->incrementGts();
    Pcg32 rng(1);
    Addr base = 0x10000000;
    for (auto _ : state) {
        Addr a = base + (rng.next() & 0x3ffc0);
        benchmark::DoNotOptimize(engine.onStore(0, 1, a, 8));
    }
}
BENCHMARK(BM_DeltaStoreHook);

void
BM_DeltaStoreHookHotLine(benchmark::State &state)
{
    testutil::MemoryRig rig;
    rig.space->mapRegion(0x10000000, 4, os::Region::Data);
    ckpt::DeltaBackup engine(rig.cfg, *rig.context, *rig.space,
                             rig.phys, *rig.hierarchy, rig.stats);
    rig.context->incrementGts();
    engine.onStore(0, 1, 0x10000000, 8);  // line already dirty
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.onStore(0, 1, 0x10000000, 8));
}
BENCHMARK(BM_DeltaStoreHookHotLine);

void
BM_FilterCamLookup(benchmark::State &state)
{
    stats::StatGroup g("bm");
    cpu::FilterCam cam(static_cast<std::uint32_t>(state.range(0)), g);
    Pcg32 rng(2);
    for (auto _ : state) {
        Addr page = (rng.next() & 0xff) << 12;
        benchmark::DoNotOptimize(cam.lookupInsert(page));
    }
}
BENCHMARK(BM_FilterCamLookup)->Arg(32)->Arg(64)->Arg(256);

void
BM_LineBitVector(benchmark::State &state)
{
    ckpt::LineBitVector a(64), b(64);
    for (int i = 0; i < 64; i += 3)
        b.set(i);
    for (auto _ : state) {
        a.orWith(b);
        benchmark::DoNotOptimize(a.popcount());
        benchmark::DoNotOptimize(a.any());
    }
}
BENCHMARK(BM_LineBitVector);

void
BM_TraceFifoPush(benchmark::State &state)
{
    stats::StatGroup g("bm");
    mem::TraceFifo fifo(32, g);
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fifo.push(t, 6));
        t += 8;
    }
}
BENCHMARK(BM_TraceFifoPush);

void
BM_CacheAccess(benchmark::State &state)
{
    stats::StatGroup g("bm");
    SystemConfig cfg;
    mem::Cache l2(cfg.l2, g);
    Pcg32 rng(3);
    for (auto _ : state) {
        Addr a = (rng.next() & 0xfffff) & ~63ull;
        benchmark::DoNotOptimize(l2.access(a, (a & 64) != 0));
    }
}
BENCHMARK(BM_CacheAccess);

} // anonymous namespace

BENCHMARK_MAIN();
