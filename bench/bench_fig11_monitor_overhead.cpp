/**
 * @file
 * Figure 11: service response-time overhead of INDRA monitoring
 * (backup and rollback excluded, exactly as in the paper).
 *
 * Paper shape: a small percentage for every daemon (all below ~10%).
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig11_monitor_overhead",
                            "Figure 11: monitoring overhead on service response time");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;
    SystemConfig monitored = base;
    monitored.monitorEnabled = true;

    benchutil::printHeader(
        "Figure 11: monitoring overhead on service response time (%)",
        monitored);

    benchutil::printCols({"overhead_%"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig11_monitor_overhead",
                                      cli.obs());
    collector.resize(daemons.size());
    auto overheads = sweep.run(daemons.size(), [&](std::size_t i) {
        auto off = benchutil::runBenign(core::NodeConfig{base}, daemons[i], 3, 8);
        auto on = benchutil::runBenign(core::NodeConfig{monitored}, daemons[i], 3, 8,
                                       collector.traceFor(i));
        collector.snapshot(i, daemons[i].name,
                           on.system->rootStats());
        return (on.totalResponse() / off.totalResponse() - 1.0) * 100.0;
    });
    double sum = 0;
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name, {overheads[i]});
        sum += overheads[i];
    }
    benchutil::printRow("average", {sum / daemons.size()});
    std::cout << "\npaper: all daemons below ~10% overhead"
              << std::endl;
    collector.write();
    return 0;
}
