/**
 * @file
 * Figure 11: service response-time overhead of INDRA monitoring
 * (backup and rollback excluded, exactly as in the paper).
 *
 * Paper shape: a small percentage for every daemon (all below ~10%).
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;
    SystemConfig monitored = base;
    monitored.monitorEnabled = true;

    benchutil::printHeader(
        "Figure 11: monitoring overhead on service response time (%)",
        monitored);

    benchutil::printCols({"overhead_%"});
    double sum = 0;
    for (const auto &profile : net::standardDaemons()) {
        auto off = benchutil::runBenign(base, profile, 3, 8);
        auto on = benchutil::runBenign(monitored, profile, 3, 8);
        double overhead =
            (on.totalResponse() / off.totalResponse() - 1.0) * 100.0;
        benchutil::printRow(profile.name, {overhead});
        sum += overhead;
    }
    benchutil::printRow("average",
                        {sum / net::standardDaemons().size()});
    std::cout << "\npaper: all daemons below ~10% overhead"
              << std::endl;
    return 0;
}
