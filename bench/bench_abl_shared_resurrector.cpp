/**
 * @file
 * Ablation: one shared resurrector vs one resurrector per
 * resurrectee. With a single resurrector multiplexing N service
 * cores, every verification takes N time slices — the monitoring
 * overhead curve shows when a second resurrector core pays off
 * (the paper: "having more resurrector cores is possible").
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_abl_shared_resurrector",
                            "Ablation: shared resurrector time-slicing");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.checkpointScheme = CheckpointScheme::None;
    base.monitorEnabled = false;

    benchutil::printHeader(
        "Ablation: shared resurrector time-slicing", base);

    std::cout << std::left << std::setw(14) << "resurrectees"
              << std::right << std::setw(18) << "overhead_%_shared"
              << std::setw(18) << "overhead_%_dedic" << "\n";

    net::DaemonProfile profile = net::daemonByName("ftpd");
    auto off = benchutil::runBenign(core::NodeConfig{base}, profile, 2, 5);

    const std::vector<std::uint32_t> counts = {1, 2, 4};
    benchutil::ObsCollector collector("bench_abl_shared_resurrector",
                                      cli.obs());
    collector.resize(counts.size());
    struct Row { double shared_total, dedic_total; };
    auto rows = sweep.run(counts.size(), [&](std::size_t i) {
        SystemConfig shared = base;
        shared.monitorEnabled = true;
        shared.numResurrectees = counts[i];
        shared.sharedResurrector = true;
        auto s = benchutil::runBenign(core::NodeConfig{shared}, profile, 2, 5,
                                      collector.traceFor(i));
        collector.snapshot(i,
                           "shared_" + std::to_string(counts[i]),
                           s.system->rootStats());

        SystemConfig dedicated = shared;
        dedicated.sharedResurrector = false;
        auto d = benchutil::runBenign(core::NodeConfig{dedicated}, profile, 2, 5);
        collector.snapshot(i,
                           "dedicated_" + std::to_string(counts[i]),
                           d.system->rootStats());
        return Row{s.totalResponse(), d.totalResponse()};
    });
    for (std::size_t i = 0; i < counts.size(); ++i) {
        std::cout << std::left << std::setw(14) << counts[i]
                  << std::right
                  << std::fixed << std::setprecision(3) << std::setw(18)
                  << (rows[i].shared_total / off.totalResponse() - 1.0) *
                       100.0
                  << std::setw(18)
                  << (rows[i].dedic_total / off.totalResponse() - 1.0) *
                       100.0
                  << "\n";
    }
    std::cout << "\na single resurrector saturates as service cores "
                 "are added; dedicated monitors stay flat" << std::endl;
    collector.write();
    return 0;
}
