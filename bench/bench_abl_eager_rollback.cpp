/**
 * @file
 * Ablation: rollback-on-demand (the paper's design) vs eager rollback
 * at recovery time.
 *
 * Eager rollback pays the whole restoration cost on the recovery
 * critical path — exactly what INDRA's concurrent arming avoids
 * ("without the overhead of an explicit memory rollback",
 * Section 3.3.1). Measures time from detection to the completion of
 * the next benign response.
 */

#include "bench_util.hh"

using namespace indra;

namespace
{

/** Ticks from attack start to the next benign response completing. */
double
recoveryToNextResponse(const SystemConfig &cfg,
                       const net::DaemonProfile &profile,
                       benchutil::ObsCollector &collector,
                       std::size_t cell, const std::string &label)
{
    core::IndraSystem sys(core::NodeConfig{cfg});
    sys.attachTraceLog(collector.traceFor(cell));
    sys.boot();
    std::size_t slot = sys.deployService(profile);
    sys.runScript(net::ClientScript::benign(2), slot);

    net::ServiceRequest bad;
    bad.seq = 3;
    bad.attack = net::AttackKind::DosFlood;
    auto attacked = sys.processRequest(slot, bad);

    net::ServiceRequest next;
    next.seq = 4;
    auto served = sys.processRequest(slot, next);
    collector.snapshot(cell, label, sys.rootStats());
    return static_cast<double>(served.endTick - attacked.startTick);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_abl_eager_rollback",
                            "Ablation: rollback on demand vs eager rollback");
    auto sweep = cli.parse(argc, argv);
    SystemConfig lazy;
    lazy.monitorEnabled = false;
    SystemConfig eager = lazy;
    eager.eagerRollback = true;

    benchutil::printHeader(
        "Ablation: rollback on demand vs eager rollback", lazy);

    benchutil::printCols({"lazy_cycles", "eager_cycles", "eager/lazy"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_abl_eager_rollback",
                                      cli.obs());
    collector.resize(daemons.size());
    struct Row { double tl, te; };
    auto rows = sweep.run(daemons.size(), [&](std::size_t i) {
        std::string name = daemons[i].name;
        return Row{recoveryToNextResponse(lazy, daemons[i], collector,
                                          i, name + ".lazy"),
                   recoveryToNextResponse(eager, daemons[i], collector,
                                          i, name + ".eager")};
    });
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name,
                            {rows[i].tl, rows[i].te,
                             rows[i].te / rows[i].tl});
    }
    std::cout << "\nlazy recovery overlaps restoration with the next "
                 "request; eager pays it up front" << std::endl;
    collector.write();
    return 0;
}
