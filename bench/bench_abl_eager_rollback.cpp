/**
 * @file
 * Ablation: rollback-on-demand (the paper's design) vs eager rollback
 * at recovery time.
 *
 * Eager rollback pays the whole restoration cost on the recovery
 * critical path — exactly what INDRA's concurrent arming avoids
 * ("without the overhead of an explicit memory rollback",
 * Section 3.3.1). Measures time from detection to the completion of
 * the next benign response.
 */

#include "bench_util.hh"

using namespace indra;

namespace
{

/** Ticks from attack start to the next benign response completing. */
double
recoveryToNextResponse(const SystemConfig &cfg,
                       const net::DaemonProfile &profile)
{
    core::IndraSystem sys(cfg);
    sys.boot();
    std::size_t slot = sys.deployService(profile);
    sys.runScript(net::ClientScript::benign(2), slot);

    net::ServiceRequest bad;
    bad.seq = 3;
    bad.attack = net::AttackKind::DosFlood;
    auto attacked = sys.processRequest(slot, bad);

    net::ServiceRequest next;
    next.seq = 4;
    auto served = sys.processRequest(slot, next);
    return static_cast<double>(served.endTick - attacked.startTick);
}

} // anonymous namespace

int
main()
{
    setLogVerbosity(0);
    SystemConfig lazy;
    lazy.monitorEnabled = false;
    SystemConfig eager = lazy;
    eager.eagerRollback = true;

    benchutil::printHeader(
        "Ablation: rollback on demand vs eager rollback", lazy);

    benchutil::printCols({"lazy_cycles", "eager_cycles", "eager/lazy"});
    for (const auto &profile : net::standardDaemons()) {
        double tl = recoveryToNextResponse(lazy, profile);
        double te = recoveryToNextResponse(eager, profile);
        benchutil::printRow(profile.name, {tl, te, te / tl});
    }
    std::cout << "\nlazy recovery overlaps restoration with the next "
                 "request; eager pays it up front" << std::endl;
    return 0;
}
