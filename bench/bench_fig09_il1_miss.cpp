/**
 * @file
 * Figure 9: L1 instruction-cache miss rate per daemon.
 *
 * Paper shape: low single-digit percentages for all six daemons
 * (roughly 0.5-4.5%), bind and nfs at the high end, average ~2%.
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig cfg;
    benchutil::printHeader(
        "Figure 9: L1 instruction cache miss rate (%)", cfg);

    benchutil::printCols({"il1_miss_%"});
    double sum = 0;
    for (const auto &profile : net::standardDaemons()) {
        auto run = benchutil::runBenign(cfg, profile, 3, 10);
        // Miss rate per instruction fetch: sequential fetches within
        // an already-resident line always hit.
        double instr = static_cast<double>(
            run.serviceSlot().core->instructions());
        double rate = instr > 0
            ? run.serviceSlot().hierarchy->l1iCache().misses() /
                instr * 100.0
            : 0.0;
        benchutil::printRow(profile.name, {rate});
        sum += rate;
    }
    benchutil::printRow("average",
                        {sum / net::standardDaemons().size()});
    return 0;
}
