/**
 * @file
 * Figure 9: L1 instruction-cache miss rate per daemon.
 *
 * Paper shape: low single-digit percentages for all six daemons
 * (roughly 0.5-4.5%), bind and nfs at the high end, average ~2%.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig09_il1_miss",
                            "Figure 9: L1 instruction cache miss rate");
    auto sweep = cli.parse(argc, argv);
    SystemConfig cfg;
    benchutil::printHeader(
        "Figure 9: L1 instruction cache miss rate (%)", cfg);

    benchutil::printCols({"il1_miss_%"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig09_il1_miss",
                                      cli.obs());
    collector.resize(daemons.size());
    auto rates = sweep.run(daemons.size(), [&](std::size_t i) {
        auto run = benchutil::runBenign(core::NodeConfig{cfg}, daemons[i], 3, 10,
                                        collector.traceFor(i));
        collector.snapshot(i, daemons[i].name,
                           run.system->rootStats());
        // Miss rate per instruction fetch: sequential fetches within
        // an already-resident line always hit.
        double instr = static_cast<double>(
            run.serviceSlot().core->instructions());
        return instr > 0
            ? run.serviceSlot().hierarchy->l1iCache().misses() /
                instr * 100.0
            : 0.0;
    });
    double sum = 0;
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name, {rates[i]});
        sum += rates[i];
    }
    benchutil::printRow("average", {sum / daemons.size()});
    collector.write();
    return 0;
}
