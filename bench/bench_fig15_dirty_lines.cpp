/**
 * @file
 * Figure 15: percentage of cache lines actually backed up out of all
 * the lines of the pages touched per request — the reason delta
 * backup beats page-granularity schemes by orders of magnitude.
 *
 * Paper shape: modest fractions for all daemons, bind by far the
 * heaviest writer (~45%), the rest mostly 10-25%.
 */

#include "bench_util.hh"

#include "checkpoint/delta_backup.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig cfg;
    cfg.monitorEnabled = false;
    cfg.checkpointScheme = CheckpointScheme::DeltaBackup;
    benchutil::printHeader(
        "Figure 15: % of touched-page lines requiring backup", cfg);

    benchutil::printCols({"dirty_lines_%", "pages/request"});
    double sum = 0;
    double page_sum = 0;
    for (const auto &profile : net::standardDaemons()) {
        auto run = benchutil::runBenign(cfg, profile, 2, 8);
        auto *delta = dynamic_cast<ckpt::DeltaBackup *>(
            run.serviceSlot().policy.get());
        double ratio = delta->dirtyLineRatio().mean() * 100.0;
        double pages = delta->pagesPerRequest().mean();
        benchutil::printRow(profile.name, {ratio, pages});
        sum += ratio;
        page_sum += pages;
    }
    std::size_t n = net::standardDaemons().size();
    benchutil::printRow("average", {sum / n, page_sum / n});
    std::cout << "\npaper: bind ~45%, others mostly 10-25%"
              << std::endl;
    return 0;
}
