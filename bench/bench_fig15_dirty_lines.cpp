/**
 * @file
 * Figure 15: percentage of cache lines actually backed up out of all
 * the lines of the pages touched per request — the reason delta
 * backup beats page-granularity schemes by orders of magnitude.
 *
 * Paper shape: modest fractions for all daemons, bind by far the
 * heaviest writer (~45%), the rest mostly 10-25%.
 */

#include "bench_util.hh"

#include "checkpoint/delta_backup.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig15_dirty_lines",
                            "Figure 15: touched-page lines requiring backup");
    auto sweep = cli.parse(argc, argv);
    SystemConfig cfg;
    cfg.monitorEnabled = false;
    cfg.checkpointScheme = CheckpointScheme::DeltaBackup;
    benchutil::printHeader(
        "Figure 15: % of touched-page lines requiring backup", cfg);

    benchutil::printCols({"dirty_lines_%", "pages/request"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig15_dirty_lines",
                                      cli.obs());
    collector.resize(daemons.size());
    struct Row { double ratio, pages; };
    auto rows = sweep.run(daemons.size(), [&](std::size_t i) {
        auto run = benchutil::runBenign(core::NodeConfig{cfg}, daemons[i], 2, 8,
                                        collector.traceFor(i));
        collector.snapshot(i, daemons[i].name,
                           run.system->rootStats());
        auto *delta = dynamic_cast<ckpt::DeltaBackup *>(
            run.serviceSlot().policy.get());
        return Row{delta->dirtyLineRatio().mean() * 100.0,
                   delta->pagesPerRequest().mean()};
    });
    double sum = 0;
    double page_sum = 0;
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name,
                            {rows[i].ratio, rows[i].pages});
        sum += rows[i].ratio;
        page_sum += rows[i].pages;
    }
    std::size_t n = daemons.size();
    benchutil::printRow("average", {sum / n, page_sum / n});
    std::cout << "\npaper: bind ~45%, others mostly 10-25%"
              << std::endl;
    collector.write();
    return 0;
}
