/**
 * @file
 * Deterministic scenario fuzzer for the differential oracle
 * (src/check): each seed derives a complete Scenario — daemon,
 * checkpoint scheme, fault plan, attack schedule, optional storm —
 * runs it with the SystemChecker attached, and reports any oracle
 * violation. Scenarios are pure values of their seed and the sweep
 * cells share nothing, so the table is bit-identical for any --jobs
 * count.
 *
 * On a violation the first failing scenario is shrunk (greedy delta
 * debugging, preserving the violated invariant) to a minimal
 * reproducer and written as a JSON file that --replay re-runs
 * exactly.
 *
 * Usage: bench_fuzz_scenarios [--jobs N] [--smoke]
 *                             [--seeds N] [--seed-base N]
 *                             [--replay FILE] [--out FILE]
 *                             [--plant-bug] [--plant-domain-bug]
 * --plant-bug is the oracle's own sensitivity test: it corrupts one
 * byte behind the backup engine's back, expects the oracle to catch
 * the inexact rollback, and requires the shrunk reproducer to stay
 * small. --plant-domain-bug runs the same flip under the
 * domain-rewind scheme and additionally requires the catching
 * invariant to be domain-rewind-confined — the confined rewind must
 * neither repair nor excuse a byte outside its compartment. Exit
 * status is 0 only when the run met its expectation (fuzz/replay: no
 * violation; plant modes: caught and shrunk).
 *
 * Requires a build configured with -DINDRA_CHECK=ON; with the hooks
 * compiled out the bench says so and exits cleanly.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "check/scenario.hh"

using namespace indra;
using check::Scenario;
using check::ScenarioVerdict;
using check::ShrinkResult;

namespace
{

std::uint64_t
parseU64(const std::string &text, std::uint64_t dflt)
{
    return text.empty() ? dflt
                        : std::strtoull(text.c_str(), nullptr, 10);
}

/** One deterministic, grep-able line per scenario run. */
std::string
verdictLine(const Scenario &sc, const ScenarioVerdict &v)
{
    std::ostringstream os;
    os << sc.describe() << ": ";
    if (v.violated) {
        os << "VIOLATED " << check::invariantName(v.invariant)
           << " epoch=" << v.epoch << " (" << v.detail << ")";
    } else {
        os << "ok";
    }
    os << " [requests=" << v.requests << " checks=" << v.checks
       << " violations=" << v.violations << "]";
    return os.str();
}

void
writeReproducer(const Scenario &sc, const std::string &path)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write reproducer ", path);
    out << sc.toJson();
    std::cout << "reproducer written: " << path
              << " (re-run with --replay " << path << ")\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli(
        "bench_fuzz_scenarios",
        "Deterministic oracle fuzzing with shrinking reproducers");
    bool smoke = false;
    bool plantBug = false;
    bool plantDomainBug = false;
    std::string seedsOpt, seedBaseOpt, replayPath, outPath;
    cli.flag("--smoke", "CI-sized seed budget", &smoke);
    cli.flag("--plant-bug",
             "oracle sensitivity self-test (plant, catch, shrink)",
             &plantBug);
    cli.flag("--plant-domain-bug",
             "confined-rewind sensitivity self-test "
             "(plant under domain-rewind, catch, shrink)",
             &plantDomainBug);
    cli.option("--seeds", "N", "number of fuzz seeds (default 200)",
               &seedsOpt);
    cli.option("--seed-base", "N", "first seed (default 1)",
               &seedBaseOpt);
    cli.option("--replay", "FILE", "re-run one reproducer JSON",
               &replayPath);
    cli.option("--out", "FILE",
               "reproducer output path (default fuzz_reproducer.json)",
               &outPath);
    auto sweep = cli.parse(argc, argv);

    if (!INDRA_CHECK_ENABLED) {
        std::cout << "bench_fuzz_scenarios: oracle hooks compiled out "
                     "(configure with -DINDRA_CHECK=ON)\n";
        return 0;
    }

    const std::uint64_t seedBase = parseU64(seedBaseOpt, 1);
    const std::uint64_t nSeeds =
        parseU64(seedsOpt, smoke ? 12 : 200);
    const std::uint64_t shrinkBudget = smoke ? 80 : 200;
    if (outPath.empty())
        outPath = "fuzz_reproducer.json";

    // ------------------------------------------------------- replay
    if (!replayPath.empty()) {
        std::ifstream in(replayPath);
        fatal_if(!in, "cannot read reproducer ", replayPath);
        std::stringstream text;
        text << in.rdbuf();
        Scenario sc = Scenario::fromJson(text.str());
        ScenarioVerdict v = check::runScenario(sc);
        std::cout << "replay " << verdictLine(sc, v) << "\n";
        return v.violated ? 1 : 0;
    }

    // ---------------------------------------------------- plant-bug
    if (plantBug || plantDomainBug) {
        Scenario sc = plantDomainBug
            ? check::makePlantedDomainScenario(seedBase)
            : check::makePlantedScenario(seedBase);
        ScenarioVerdict v = check::runScenario(sc);
        std::cout << "planted " << verdictLine(sc, v) << "\n";
        if (!v.violated) {
            std::cout << "FAIL: the oracle missed the planted "
                         "rollback bug\n";
            return 1;
        }
        if (plantDomainBug &&
            v.invariant != check::InvariantId::DomainRewindConfined) {
            std::cout << "FAIL: expected domain-rewind-confined to "
                         "catch the plant, got "
                      << check::invariantName(v.invariant) << "\n";
            return 1;
        }
        ShrinkResult shrunk = check::shrinkScenario(
            sc, v, check::runScenario, shrinkBudget);
        std::cout << "shrunk  " << verdictLine(shrunk.scenario,
                                               shrunk.verdict)
                  << "\n"
                  << "shrink: " << sc.requestCount() << " -> "
                  << shrunk.scenario.requestCount()
                  << " requests in " << shrunk.runsUsed << " runs\n";
        writeReproducer(shrunk.scenario, outPath);
        if (shrunk.scenario.requestCount() > 10) {
            std::cout << "FAIL: reproducer did not shrink below 10 "
                         "requests\n";
            return 1;
        }
        std::cout << "ok: planted bug caught and shrunk\n";
        return 0;
    }

    // --------------------------------------------------- fuzz sweep
    std::cout << "fuzzing " << nSeeds << " scenario seeds from "
              << seedBase << "\n";
    struct Cell
    {
        Scenario scenario;
        ScenarioVerdict verdict;
    };
    auto cells = sweep.run(
        static_cast<std::size_t>(nSeeds), [&](std::size_t i) {
            Cell cell;
            cell.scenario = check::makeScenario(seedBase + i);
            cell.verdict = check::runScenario(cell.scenario);
            return cell;
        });

    std::uint64_t checks = 0, requests = 0, bad = 0;
    const Cell *firstBad = nullptr;
    for (const Cell &c : cells) {
        std::cout << verdictLine(c.scenario, c.verdict) << "\n";
        checks += c.verdict.checks;
        requests += c.verdict.requests;
        if (c.verdict.violated) {
            ++bad;
            if (!firstBad)
                firstBad = &c;
        }
    }
    std::cout << "\n" << nSeeds << " scenarios, " << requests
              << " requests, " << checks << " oracle checks, " << bad
              << " violating\n";

    if (firstBad) {
        ShrinkResult shrunk = check::shrinkScenario(
            firstBad->scenario, firstBad->verdict, check::runScenario,
            shrinkBudget);
        std::cout << "shrunk  " << verdictLine(shrunk.scenario,
                                               shrunk.verdict)
                  << "\n";
        writeReproducer(shrunk.scenario, outPath);
        return 1;
    }
    return 0;
}
