/**
 * @file
 * Ablation: hybrid recovery's macro-checkpoint period (Figure 8's
 * "once every 10,000 requests") against dormant attacks.
 *
 * A short period pays frequent full-application checkpoints but heals
 * dormant damage from a recent image; a long period is cheap in the
 * benign case. Measures checkpoint work, failures until the macro
 * fallback fires, and availability under a dormant plant.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_abl_hybrid",
                            "Ablation: hybrid recovery macro-checkpoint period");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.consecutiveFailureThreshold = 2;
    benchutil::printHeader(
        "Ablation: hybrid recovery macro-checkpoint period", base);

    std::cout << std::left << std::setw(10) << "period"
              << std::right << std::setw(12) << "captures"
              << std::setw(14) << "macro_rolls"
              << std::setw(14) << "crashes"
              << std::setw(14) << "avail" << "\n";

    net::DaemonProfile profile = net::daemonByName("sendmail");
    profile.instrPerRequest = 60000;

    const std::vector<std::uint64_t> periods = {2, 5, 10, 25};
    benchutil::ObsCollector collector("bench_abl_hybrid", cli.obs());
    collector.resize(periods.size());
    struct Row
    {
        std::uint64_t captures, restores, crashes;
        double availability;
    };
    auto rows = sweep.run(periods.size(), [&](std::size_t i) {
        SystemConfig cfg = base;
        cfg.macroCheckpointPeriod = periods[i];
        core::IndraSystem sys(core::NodeConfig{cfg});
        sys.attachTraceLog(collector.traceFor(i));
        sys.boot();
        std::size_t slot = sys.deployService(profile);

        auto script = net::ClientScript::benign(30);
        script[9].attack = net::AttackKind::Dormant;
        auto outcomes = sys.runScript(script, slot);
        auto report = net::AvailabilityReport::build(outcomes);

        std::uint64_t crashes = 0;
        for (const auto &o : outcomes) {
            if (o.status == net::RequestStatus::CrashedRecovered)
                ++crashes;
        }
        collector.snapshot(i, "period_" + std::to_string(periods[i]),
                           sys.rootStats());
        return Row{sys.slot(slot).macro->captures(),
                   sys.slot(slot).macro->restores(), crashes,
                   report.availability()};
    });
    for (std::size_t i = 0; i < periods.size(); ++i) {
        std::cout << std::left << std::setw(10) << periods[i]
                  << std::right << std::setw(12) << rows[i].captures
                  << std::setw(14) << rows[i].restores
                  << std::setw(14) << rows[i].crashes << std::fixed
                  << std::setprecision(3) << std::setw(14)
                  << rows[i].availability << "\n";
    }
    std::cout << "\ndormant damage defeats micro recovery; the macro "
                 "fallback (Fig. 8) revives the service at any period"
              << std::endl;
    collector.write();
    return 0;
}
