/**
 * @file
 * Figure 13: average instruction count between back-to-back service
 * requests.
 *
 * Paper shape: hundreds of thousands to millions of instructions;
 * bind the clear minimum at ~150k, sendmail the maximum near 2.3M.
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig cfg;
    benchutil::printHeader(
        "Figure 13: instructions between service requests", cfg);

    benchutil::printCols({"instructions", "cpi"});
    double sum = 0;
    for (const auto &profile : net::standardDaemons()) {
        auto run = benchutil::runBenign(cfg, profile, 2, 8);
        double total = 0;
        for (const auto &o : run.outcomes)
            total += static_cast<double>(o.instructions);
        double avg = total / run.outcomes.size();
        double cpi = run.totalResponse() / total;
        benchutil::printRow(profile.name, {avg, cpi}, 0);
        sum += avg;
    }
    benchutil::printRow("average",
                        {sum / net::standardDaemons().size()}, 0);
    return 0;
}
