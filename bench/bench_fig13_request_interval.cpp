/**
 * @file
 * Figure 13: average instruction count between back-to-back service
 * requests.
 *
 * Paper shape: hundreds of thousands to millions of instructions;
 * bind the clear minimum at ~150k, sendmail the maximum near 2.3M.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig13_request_interval",
                            "Figure 13: instructions between service requests");
    auto sweep = cli.parse(argc, argv);
    SystemConfig cfg;
    benchutil::printHeader(
        "Figure 13: instructions between service requests", cfg);

    benchutil::printCols({"instructions", "cpi"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig13_request_interval",
                                      cli.obs());
    collector.resize(daemons.size());
    struct Row { double avg, cpi; };
    auto rows = sweep.run(daemons.size(), [&](std::size_t i) {
        auto run = benchutil::runBenign(core::NodeConfig{cfg}, daemons[i], 2, 8,
                                        collector.traceFor(i));
        collector.snapshot(i, daemons[i].name,
                           run.system->rootStats());
        double total = 0;
        for (const auto &o : run.outcomes)
            total += static_cast<double>(o.instructions);
        return Row{total / run.outcomes.size(),
                   run.totalResponse() / total};
    });
    double sum = 0;
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name,
                            {rows[i].avg, rows[i].cpi}, 0);
        sum += rows[i].avg;
    }
    benchutil::printRow("average", {sum / daemons.size()}, 0);
    collector.write();
    return 0;
}
