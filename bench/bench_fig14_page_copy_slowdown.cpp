/**
 * @file
 * Figure 14: response-time slowdown when dirty pages are backed up
 * with conventional virtual checkpointing (whole-page copy on
 * demand), normalized to a run without any backup.
 *
 * Paper shape: large slowdowns (multiples, 2-14x), dominated by
 * page-to-page copying; worst for short-request / many-page daemons.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig14_page_copy_slowdown",
                            "Figure 14: slowdown with page-copy virtual checkpointing");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;
    SystemConfig paged = base;
    paged.checkpointScheme = CheckpointScheme::VirtualCheckpoint;

    benchutil::printHeader(
        "Figure 14: slowdown with page-copy virtual checkpointing",
        paged);

    benchutil::printCols({"slowdown_x"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig14_page_copy_slowdown",
                                      cli.obs());
    collector.resize(daemons.size());
    auto slowdowns = sweep.run(daemons.size(), [&](std::size_t i) {
        auto off = benchutil::runBenign(core::NodeConfig{base}, daemons[i], 2, 6);
        auto on = benchutil::runBenign(core::NodeConfig{paged}, daemons[i], 2, 6,
                                       collector.traceFor(i));
        collector.snapshot(i, daemons[i].name,
                           on.system->rootStats());
        return on.totalResponse() / off.totalResponse();
    });
    double sum = 0;
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name, {slowdowns[i]});
        sum += slowdowns[i];
    }
    benchutil::printRow("average", {sum / daemons.size()});
    std::cout << "\npaper: multi-x slowdowns (roughly 2-14x)"
              << std::endl;
    collector.write();
    return 0;
}
