/**
 * @file
 * Figure 14: response-time slowdown when dirty pages are backed up
 * with conventional virtual checkpointing (whole-page copy on
 * demand), normalized to a run without any backup.
 *
 * Paper shape: large slowdowns (multiples, 2-14x), dominated by
 * page-to-page copying; worst for short-request / many-page daemons.
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;
    SystemConfig paged = base;
    paged.checkpointScheme = CheckpointScheme::VirtualCheckpoint;

    benchutil::printHeader(
        "Figure 14: slowdown with page-copy virtual checkpointing",
        paged);

    benchutil::printCols({"slowdown_x"});
    double sum = 0;
    for (const auto &profile : net::standardDaemons()) {
        auto off = benchutil::runBenign(base, profile, 2, 6);
        auto on = benchutil::runBenign(paged, profile, 2, 6);
        double slowdown = on.totalResponse() / off.totalResponse();
        benchutil::printRow(profile.name, {slowdown});
        sum += slowdown;
    }
    benchutil::printRow("average",
                        {sum / net::standardDaemons().size()});
    std::cout << "\npaper: multi-x slowdowns (roughly 2-14x)"
              << std::endl;
    return 0;
}
