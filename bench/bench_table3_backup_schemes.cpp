/**
 * @file
 * Table 3: comparison of macro memory backup approaches.
 *
 * For each engine, measure (a) the backup cost amortized into benign
 * request processing and (b) the recovery cost when every fourth
 * request must be rolled back. The expected ordering is the paper's:
 *
 *   backup:    delta (fast) < update log < virtual ckpt ~ software
 *   recovery:  delta ~ page-remap (fast) << update log (slow)
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_table3_backup_schemes",
                            "Table 3: memory backup approaches");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;

    const std::vector<CheckpointScheme> schemes = {
        CheckpointScheme::DeltaBackup,
        CheckpointScheme::MemoryUpdateLog,
        CheckpointScheme::VirtualCheckpoint,
        CheckpointScheme::SoftwareCheckpoint,
        CheckpointScheme::DomainRewind,
    };

    benchutil::printHeader(
        "Table 3: memory backup approaches (httpd + bind mix)", base);

    std::cout << std::left << std::setw(22) << "scheme"
              << std::right << std::setw(16) << "backup_cyc/req"
              << std::setw(18) << "recovery_cyc/rb"
              << std::setw(14) << "slow_atk/4"
              << std::setw(14) << "slow_atk/2" << "\n";

    const std::vector<std::string> daemons = {"httpd", "bind"};
    benchutil::ObsCollector collector("bench_table3_backup_schemes",
                                      cli.obs());
    collector.resize(schemes.size() * daemons.size());
    struct Cell
    {
        double backup_per_req = 0, recovery_per_rb = 0;
        double slowdown4 = 0, slowdown2 = 0;
    };
    // One cell per (scheme, daemon) pair; per-scheme totals are
    // summed below in daemon order, exactly as the serial loop did.
    auto cells = sweep.run(
        schemes.size() * daemons.size(), [&](std::size_t i) {
            CheckpointScheme scheme = schemes[i / daemons.size()];
            net::DaemonProfile profile =
                net::daemonByName(daemons[i % daemons.size()]);
            Cell cell;

            auto off = benchutil::runBenign(core::NodeConfig{base}, profile, 2, 6);
            SystemConfig cfg = base;
            cfg.checkpointScheme = scheme;

            // Total busy time per benign request (as in Fig. 16):
            // attributes recovery work to the legitimate clients
            // queued behind it, whichever window it lands in.
            auto busy_per_benign = [&](std::uint64_t period) {
                auto script = net::ClientScript::periodicAttack(
                    8, net::AttackKind::DosFlood, period);
                for (auto &r : script)
                    r.seq += 2;
                auto run = benchutil::runScript(
                    core::NodeConfig{cfg}, profile, 2, script, collector.traceFor(i));
                collector.snapshot(
                    i,
                    std::string(checkpointSchemeName(scheme)) + "." +
                        profile.name + ".atk" + std::to_string(period),
                    run.system->rootStats());
                std::uint64_t benign_n = 0;
                for (const auto &o : run.outcomes) {
                    if (o.attack == net::AttackKind::None)
                        ++benign_n;
                }
                auto &policy = *run.serviceSlot().policy;
                if (period == 4) {
                    cell.backup_per_req +=
                        static_cast<double>(policy.backupCycles()) /
                        8.0;
                    cell.recovery_per_rb += static_cast<double>(
                                                policy.recoveryCycles()) /
                        2.0;
                }
                return (run.totalResponse() / benign_n) /
                    off.meanResponse();
            };
            cell.slowdown4 = busy_per_benign(4);
            cell.slowdown2 = busy_per_benign(2);
            return cell;
        });
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        double backup_per_req = 0, recovery_per_rb = 0;
        double slowdown4 = 0, slowdown2 = 0;
        for (std::size_t d = 0; d < daemons.size(); ++d) {
            const Cell &cell = cells[s * daemons.size() + d];
            backup_per_req += cell.backup_per_req;
            recovery_per_rb += cell.recovery_per_rb;
            slowdown4 += cell.slowdown4;
            slowdown2 += cell.slowdown2;
        }
        benchutil::printRow(checkpointSchemeName(schemes[s]),
                            {backup_per_req / 2, recovery_per_rb / 2,
                             slowdown4 / 2, slowdown2 / 2},
                            1);
    }
    std::cout << "\ncolumns: slowdown with an attack every 4th / every "
                 "2nd request.\npaper ordering: delta backup fast on "
                 "BOTH axes; update log fast backup / slow recovery\n"
                 "(and it falls behind delta as rollbacks become "
                 "frequent); page schemes slow backup / fast recovery"
              << std::endl;
    collector.write();
    return 0;
}
