/**
 * @file
 * Figure 10: percentage of code-origin checks remaining after the
 * filter CAM, for 32- and 64-entry CAMs.
 *
 * Paper shape: on average 92% of checks waived at 32 entries and 95%
 * at 64 (i.e. ~8% / ~5% of requests survive the filter).
 */

#include "bench_util.hh"

using namespace indra;

namespace
{

double
residualChecks(const net::DaemonProfile &profile, std::uint32_t cam,
               benchutil::ObsCollector &collector, std::size_t cell)
{
    SystemConfig cfg;
    cfg.filterCamEntries = cam;
    auto run = benchutil::runBenign(core::NodeConfig{cfg}, profile, 3, 8,
                                    collector.traceFor(cell));
    collector.snapshot(cell,
                       profile.name + ".cam" + std::to_string(cam),
                       run.system->rootStats());
    auto &filter = run.serviceSlot().core->filterCam();
    return filter.missRatio() * 100.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig10_origin_filter",
                            "Figure 10: code-origin checks surviving CAM filtering");
    auto sweep = cli.parse(argc, argv);
    SystemConfig cfg;
    benchutil::printHeader(
        "Figure 10: % of code-origin checks after CAM filtering", cfg);

    benchutil::printCols({"32-entry", "64-entry"});
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig10_origin_filter",
                                      cli.obs());
    collector.resize(daemons.size());
    struct Row { double r32, r64; };
    auto rows = sweep.run(daemons.size(), [&](std::size_t i) {
        return Row{residualChecks(daemons[i], 32, collector, i),
                   residualChecks(daemons[i], 64, collector, i)};
    });
    double s32 = 0, s64 = 0;
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        benchutil::printRow(daemons[i].name, {rows[i].r32, rows[i].r64});
        s32 += rows[i].r32;
        s64 += rows[i].r64;
    }
    std::size_t n = daemons.size();
    benchutil::printRow("average", {s32 / n, s64 / n});
    std::cout << "\npaper: average 8% residual at 32 entries, 5% at 64"
              << std::endl;
    collector.write();
    return 0;
}
