/**
 * @file
 * Figure 10: percentage of code-origin checks remaining after the
 * filter CAM, for 32- and 64-entry CAMs.
 *
 * Paper shape: on average 92% of checks waived at 32 entries and 95%
 * at 64 (i.e. ~8% / ~5% of requests survive the filter).
 */

#include "bench_util.hh"

using namespace indra;

namespace
{

double
residualChecks(const net::DaemonProfile &profile, std::uint32_t cam)
{
    SystemConfig cfg;
    cfg.filterCamEntries = cam;
    auto run = benchutil::runBenign(cfg, profile, 3, 8);
    auto &filter = run.serviceSlot().core->filterCam();
    return filter.missRatio() * 100.0;
}

} // anonymous namespace

int
main()
{
    setLogVerbosity(0);
    SystemConfig cfg;
    benchutil::printHeader(
        "Figure 10: % of code-origin checks after CAM filtering", cfg);

    benchutil::printCols({"32-entry", "64-entry"});
    double s32 = 0, s64 = 0;
    for (const auto &profile : net::standardDaemons()) {
        double r32 = residualChecks(profile, 32);
        double r64 = residualChecks(profile, 64);
        benchutil::printRow(profile.name, {r32, r64});
        s32 += r32;
        s64 += r64;
    }
    std::size_t n = net::standardDaemons().size();
    benchutil::printRow("average", {s32 / n, s64 / n});
    std::cout << "\npaper: average 8% residual at 32 entries, 5% at 64"
              << std::endl;
    return 0;
}
