/**
 * @file
 * Confined domain rewind vs full rejuvenation, at equal attack budget.
 *
 * The reinfect adversary replants dormant damage every time the
 * defense heals, which is exactly the workload the fourth recovery
 * scheme was built for: under the classic ladder every replant costs
 * a macro restore or a full rejuvenation of the whole service, while
 * the domain-rewind scheme discards only the attributed compartment
 * and keeps the other domains serving.
 *
 * The attacker axis is fixed (reinfect, budget anchored to what the
 * static storm actually delivered); the defense axis is the paper's
 * delta-backup ladder followed by the domain-rewind scheme at 2, 4,
 * and 8 compartments. Every cell is a pure function of its config, so
 * the table is bit-identical for any --jobs.
 *
 * Reported per cell:
 *   goodput   served legitimate requests per Mcycle
 *   raw_tput  executed requests (attacks included) per Mcycle
 *   shed_rate sheds / (sheds + executed)
 *   p99       legit response time p99, cycles
 *   rec_p99   p99 latency of requests needing any recovery
 *   rewinds   confined domain rewinds performed
 *   dorm_live rewinds that left dormant damage alive (must stay 0)
 *   reinf     re-infections (dormant damage replanted after a heal)
 *   rejuv     full rejuvenations the ladder still had to pay for
 *
 * Usage: bench_domain_rewind [--jobs N] [--smoke]
 * --smoke shrinks the workload and self-checks: equal budgets, at
 * least one confined rewind, no dormant damage surviving any rewind,
 * and the domain-rewind scheme strictly above the full-rejuvenation
 * ladder's goodput under the same attacker.
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "resilience/storm.hh"

using namespace indra;

namespace
{

/** The defense axis: the classic ladder, then confined rewind. */
struct DefenseSpec
{
    const char *label;
    CheckpointScheme scheme;
    std::uint32_t domains;  //!< 0 = config default (unused)
};

constexpr DefenseSpec defenses[] = {
    {"full-rejuvenation", CheckpointScheme::DeltaBackup, 0},
    {"domain-rewind:2", CheckpointScheme::DomainRewind, 2},
    {"domain-rewind:4", CheckpointScheme::DomainRewind, 4},
    {"domain-rewind:8", CheckpointScheme::DomainRewind, 8},
};
constexpr std::size_t nDefenses =
    sizeof(defenses) / sizeof(defenses[0]);

struct Cell
{
    std::string label;
    resilience::StormReport rep;
    std::uint64_t rejuvenations = 0;
};

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.physMemBytes = 128ULL * 1024 * 1024;
    cfg.checkpointScheme = CheckpointScheme::DeltaBackup;
    cfg.consecutiveFailureThreshold = 4;
    // Same defense pricing as the adversary matrix: rejuvenation is
    // expensive enough that pre-empting it matters, macro epochs
    // frequent enough that the ladder has somewhere to fall back to.
    cfg.macroCheckpointPeriod = 10;
    cfg.rejuvenationCycles = 2000000;
    return cfg;
}

resilience::ResilienceConfig
defenseConfig()
{
    resilience::ResilienceConfig rc;
    rc.queueBound = 6;
    rc.fifoHighWater = 24;
    rc.degradeViolations = 2;
    rc.quarantineFailStreak = 2;
    rc.healServedStreak = 3;
    return rc;
}

resilience::StormPlan
staticPlan(std::uint64_t legit_requests)
{
    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRequests = legit_requests;
    plan.legitRatePerMCycle = 1.0;
    plan.deadline = 3000000;
    plan.probePeriod = 50000;
    plan.attackRatePerMCycle = 8.0;
    plan.burstLen = 4;
    plan.attackKind = net::AttackKind::StackSmash;
    return plan;
}

resilience::StormPlan
reinfectPlan(std::uint64_t budget, std::uint64_t legit_requests)
{
    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRequests = legit_requests;
    plan.legitRatePerMCycle = 1.0;
    plan.deadline = 3000000;
    plan.probePeriod = 50000;
    plan.adversary.armed = true;
    plan.adversary.strategy = adversary::AdversaryStrategy::Reinfect;
    plan.adversary.budget = budget;
    plan.adversary.burstLen = 4;
    plan.adversary.baseGap = 500000;
    plan.adversary.payload = net::AttackKind::StackSmash;
    plan.adversary.reinfectDelay = 100000;
    return plan;
}

Cell
runCell(const DefenseSpec &d, std::uint64_t budget,
        std::uint64_t legit_requests,
        benchutil::ObsCollector &collector, std::size_t cell_idx)
{
    SystemConfig cfg = baseConfig();
    cfg.checkpointScheme = d.scheme;
    if (d.domains)
        cfg.domainCount = d.domains;

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25000;

    core::IndraSystem sys(core::NodeConfig{cfg, faults::FaultPlan(), defenseConfig()});
    sys.attachTraceLog(collector.traceFor(cell_idx));
    sys.boot();
    std::size_t slot = sys.deployService(profile);

    Cell cell;
    cell.label = d.label;
    cell.rep = sys.runStorm(slot, reinfectPlan(budget, legit_requests));
    cell.rejuvenations = sys.slot(slot).recovery->rejuvenations();
    collector.snapshot(cell_idx, cell.label, sys.rootStats());
    return cell;
}

void
printCell(const Cell &c)
{
    const resilience::StormReport &r = c.rep;
    double shed_rate =
        r.shedTotal() + r.executed
            ? static_cast<double>(r.shedTotal()) /
                  static_cast<double>(r.shedTotal() + r.executed)
            : 0.0;
    std::cout << std::left << std::setw(20) << c.label << std::right
              << std::setw(9) << std::fixed << std::setprecision(3)
              << r.goodput()
              << std::setw(9) << r.rawThroughput()
              << std::setw(10) << shed_rate
              << std::setw(11) << r.legitP99
              << std::setw(11) << r.recoveryP99
              << std::setw(9) << r.domainRewinds
              << std::setw(10) << r.dormantAfterRewind
              << std::setw(7) << r.reinfections
              << std::setw(7) << c.rejuvenations << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli(
        "bench_domain_rewind",
        "Confined domain rewind vs full rejuvenation under the "
        "reinfect adversary, at equal attack budget");
    bool smoke = false;
    cli.flag("--smoke", "CI-sized subset with self-checks", &smoke);
    auto sweep = cli.parse(argc, argv);

    const std::uint64_t legit_requests = smoke ? 60 : 140;

    // The equal-budget anchor: run the static storm once against the
    // classic ladder and grant the reinfect adversary exactly the
    // attack volume it delivered, so every defense faces the same
    // attacker spend.
    benchutil::ObsCollector collector("bench_domain_rewind", cli.obs());
    collector.resize(nDefenses);
    std::uint64_t budget;
    {
        net::DaemonProfile profile = net::daemonByName("httpd");
        profile.instrPerRequest = 25000;
        core::IndraSystem sys(core::NodeConfig{baseConfig(), faults::FaultPlan(),
                              defenseConfig()});
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        budget =
            sys.runStorm(slot, staticPlan(legit_requests)).attackArrivals;
    }

    benchutil::printHeader(
        "Domain rewind vs full rejuvenation (reinfect adversary, "
        "budget " + std::to_string(budget) + ")",
        baseConfig());
    std::cout << std::left << std::setw(20) << "defense" << std::right
              << std::setw(9) << "goodput"
              << std::setw(9) << "raw_tput"
              << std::setw(10) << "shed_rate"
              << std::setw(11) << "p99"
              << std::setw(11) << "rec_p99"
              << std::setw(9) << "rewinds"
              << std::setw(10) << "dorm_live"
              << std::setw(7) << "reinf"
              << std::setw(7) << "rejuv" << "\n";

    auto cells = sweep.run(nDefenses, [&](std::size_t i) {
        return runCell(defenses[i], budget, legit_requests, collector,
                       i);
    });

    for (const Cell &c : cells)
        printCell(c);

    if (!smoke) {
        collector.write();
        return 0;
    }

    // ------------------------------------------------- self checks
    int failures = 0;
    auto check = [&failures](bool ok, const std::string &what) {
        if (!ok) {
            std::cout << "SMOKE CHECK FAILED: " << what << "\n";
            ++failures;
        }
    };

    // Equal budgets actually held, and no rewind anywhere left
    // dormant damage alive (the DomainRewindClearsDormant contract).
    for (const Cell &c : cells) {
        check(c.rep.adversaryRequests <= budget,
              "adversary overspent its budget (" + c.label + ")");
        check(c.rep.dormantAfterRewind == 0,
              "dormant damage survived a rewind (" + c.label + ")");
    }

    // The classic ladder performs no rewinds; every domain defense
    // must perform at least one.
    check(cells[0].rep.domainRewinds == 0,
          "classic ladder reported a domain rewind");
    for (std::size_t i = 1; i < nDefenses; ++i) {
        check(cells[i].rep.domainRewinds >= 1,
              "no confined rewind fired (" +
                  std::string(defenses[i].label) + ")");
    }

    // The attacker must actually land its loop against the classic
    // ladder, or the comparison is vacuous.
    check(cells[0].rep.reinfections >= 1,
          "reinfect adversary never re-infected the classic ladder");

    // The point of the scheme: confined rewind strictly beats full
    // rejuvenation on goodput at equal attack budget, at every
    // compartment count.
    for (std::size_t i = 1; i < nDefenses; ++i) {
        check(cells[i].rep.goodput() > cells[0].rep.goodput(),
              std::string(defenses[i].label) +
                  " did not strictly beat full rejuvenation's goodput");
    }

    if (failures == 0)
        std::cout << "\nall smoke checks passed\n";
    collector.write();
    return failures == 0 ? 0 : 1;
}
