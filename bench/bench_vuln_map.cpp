/**
 * @file
 * Vulnerability map over fault campaigns, with replay-based
 * root-cause analysis (src/rca).
 *
 * The sweep runs kind x rate x seed fault campaigns: each cell is a
 * check::Scenario armed with exactly one fault kind, executed twice —
 * once faulted, once on the fault-free golden twin via the replay
 * detector — and every divergence is attributed to the injection
 * site that caused it. Cells are pure values of their (kind, rate,
 * seed) triple and share nothing, so the ranked tables are
 * bit-identical for any --jobs count.
 *
 * The report ranks the six fault components by failures caused,
 * splitting each into detected-by-monitor (the system's own in-band
 * verdicts), detected-by-replay, escaped (in-band missed it), and
 * silent (only the final-state memory audit saw it), with detection
 * latency percentiles for the monitor path against the replay path.
 *
 * Every escaped cell is shrunk (greedy delta debugging preserving
 * "still escapes on the same component") to a minimal reproducer;
 * --repro-dir writes them as JSON files --replay re-runs exactly.
 *
 * Usage: bench_vuln_map [--jobs N] [--smoke]
 *                       [--seeds N] [--seed-base N] [--rates R[,R...]]
 *                       [--replay FILE] [--repro-dir DIR]
 *                       [--plant-escape] [--ablate K=V[,K=V...]]
 * --plant-escape is the rca sensitivity self-test: a monitor-miss
 * campaign guaranteed to produce an escaped failure, which must be
 * caught by the replay detector, shrunk, and round-tripped. --ablate
 * routes rca.* (and any other NodeConfig) dotted keys; unknown keys
 * are fatal, naming the key.
 *
 * Exit status 0 only when the run met its expectation (sweep: every
 * escaped cell yields a reproducer that round-trips; --smoke
 * additionally self-checks the latency ordering; --replay: the
 * recorded verdict reproduces).
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "rca/campaign.hh"
#include "rca/reproducer.hh"
#include "resilience/storm.hh"
#include "sim/random.hh"

using namespace indra;
using check::Scenario;
using rca::CampaignResult;
using rca::Failure;
using rca::RcaConfig;
using rca::Reproducer;

namespace
{

std::uint64_t
parseU64(const std::string &text, std::uint64_t dflt)
{
    return text.empty() ? dflt
                        : std::strtoull(text.c_str(), nullptr, 10);
}

std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::stringstream ss(spec);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

/**
 * The campaign scenario of one (kind, rate, seed) cell: a short
 * attack-heavy schedule against the scheme the kind targets, with
 * exactly that one fault armed. Small requests (6k instructions) and
 * a tight macro period keep every backup path hot so each kind has
 * real opportunities to fire.
 */
Scenario
makeCampaignScenario(faults::FaultKind kind, double rate,
                     std::uint64_t seed)
{
    Scenario sc;
    sc.seed = seed;
    sc.daemon = "httpd";
    sc.scheme = kind == faults::FaultKind::LogFlip
                    ? CheckpointScheme::MemoryUpdateLog
                    : CheckpointScheme::DeltaBackup;
    sc.instrPerRequest = 6000;
    sc.macroPeriod = 4;
    sc.failThreshold = 2;

    check::FaultSetting setting;
    setting.kind = kind;
    setting.rate = rate;
    // A fat verdict delay, so the in-band detection latency under
    // MonitorDelay is visibly worse than re-executing the window on
    // the golden twin.
    setting.magnitude =
        kind == faults::FaultKind::MonitorDelay ? 500000 : 0;
    sc.faults.push_back(setting);

    static constexpr net::AttackKind attacks[] = {
        net::AttackKind::StackSmash,   net::AttackKind::CodeInjection,
        net::AttackKind::FuncPtrHijack, net::AttackKind::FormatString,
        net::AttackKind::DosFlood,     net::AttackKind::Dormant,
    };
    Pcg32 rng(seed, 0x70a57e11ULL + static_cast<std::uint64_t>(kind));
    std::uint32_t nSteps = 10 + rng.nextBounded(3);
    for (std::uint32_t i = 0; i < nSteps; ++i) {
        check::ScenarioStep step;
        if (rng.bernoulli(0.5))
            step.attack = attacks[rng.nextBounded(6)];
        step.repeat = 1 + rng.nextBounded(2);
        sc.steps.push_back(step);
    }
    return sc;
}

/** The planted-escape sensitivity campaign. Every attack stream ends
 *  in an explicit crash, so no monitor miss can hide a failure
 *  in-band for long — the reliable escape class is corrupted backup
 *  state: a delta-backup bit flip restores wrong bytes past the
 *  checksum, the recovered request reports the same status as the
 *  golden run, and only re-execution (cycle skew, final image)
 *  exposes it. */
Scenario
plantEscapeScenario(std::uint64_t seed)
{
    return makeCampaignScenario(faults::FaultKind::DeltaFlip, 0.5,
                                seed);
}

/** One sweep cell: the campaign verdict of (kind, rate, seed). */
struct Cell
{
    faults::FaultKind kind = faults::FaultKind::TraceDrop;
    double rate = 0.0;
    std::uint64_t seed = 0;
    Scenario scenario;
    CampaignResult result;

    std::uint64_t
    escapes() const
    {
        std::uint64_t n = 0;
        for (const Failure &f : result.failures)
            n += f.escaped ? 1 : 0;
        return n;
    }
};

/** Per-component (and per-kind) aggregate of the whole sweep. */
struct Bucket
{
    std::uint64_t cells = 0;
    std::uint64_t injected = 0;
    std::uint64_t failures = 0;
    std::uint64_t detMonitor = 0;
    std::uint64_t detReplay = 0;
    std::uint64_t escaped = 0;
    std::uint64_t silent = 0;
    std::vector<Cycles> monitorLatency;
    std::vector<Cycles> replayLatency;

    void
    add(const Failure &f)
    {
        ++failures;
        detMonitor += f.detectedByMonitor ? 1 : 0;
        detReplay += f.detectedByReplay ? 1 : 0;
        escaped += f.escaped ? 1 : 0;
        silent += f.silent ? 1 : 0;
        if (f.detectedByMonitor && f.monitorLatency)
            monitorLatency.push_back(f.monitorLatency);
        if (f.detectedByReplay)
            replayLatency.push_back(f.replayLatency);
    }
};

void
printLatencyCols(std::ostream &os, const Bucket &b)
{
    auto col = [&os](std::vector<Cycles> samples, double p) {
        if (samples.empty())
            os << std::setw(10) << "-";
        else
            os << std::setw(10) << resilience::percentile(samples, p);
    };
    col(b.monitorLatency, 50);
    col(b.monitorLatency, 95);
    col(b.replayLatency, 50);
    col(b.replayLatency, 95);
}

std::string
reproName(const Cell &cell)
{
    std::ostringstream os;
    os << "vuln_" << faults::faultKindName(cell.kind) << "_s"
       << cell.seed << ".json";
    return os.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli(
        "bench_vuln_map",
        "Component vulnerability map over kind x rate x seed fault "
        "campaigns, with replay-based root-cause analysis");
    bool smoke = false;
    bool plantEscape = false;
    std::string seedsOpt, seedBaseOpt, ratesOpt, replayPath,
        reproDir, ablateSpec;
    cli.flag("--smoke", "CI-sized slice with self-checks", &smoke);
    cli.flag("--plant-escape",
             "rca sensitivity self-test (plant a monitor-miss escape, "
             "catch by replay, shrink, round-trip)",
             &plantEscape);
    cli.option("--seeds", "N", "campaign seeds per (kind, rate) "
               "(default 20; --smoke 50)", &seedsOpt);
    cli.option("--seed-base", "N", "first seed (default 1)",
               &seedBaseOpt);
    cli.option("--rates", "R[,R...]",
               "fault rates to sweep (default 0.1,0.5,1.0; --smoke "
               "0.5)", &ratesOpt);
    cli.option("--replay", "FILE", "re-run one reproducer JSON",
               &replayPath);
    cli.option("--repro-dir", "DIR",
               "write escaped-cell reproducers here", &reproDir);
    cli.option("--ablate", "K=V[,K=V...]",
               "dotted NodeConfig overrides (rca.* routes to the "
               "campaign runner)", &ablateSpec);
    auto sweep = cli.parse(argc, argv);

    // rca.* keys ride the same dotted-key router as every other node
    // setting; unknown keys die here, naming the key. The smoke
    // defaults are seeded before the ablations so rca.* overrides
    // win.
    core::NodeConfig node;
    if (smoke) {
        node.rca.shrinkBudget = 24;
        node.rca.maxReproducers = 6;
    }
    core::applyNodeSettings(node, splitList(ablateSpec));
    RcaConfig rcfg = node.rca;

    // ------------------------------------------------------- replay
    if (!replayPath.empty()) {
        std::ifstream in(replayPath);
        fatal_if(!in, "cannot read reproducer ", replayPath);
        std::stringstream text;
        text << in.rdbuf();
        Reproducer rep = rca::reproducerFromJson(text.str());
        CampaignResult res;
        bool ok = rca::replayReproducer(rep, rcfg, &res);
        std::cout << "replay " << rep.scenario.describe() << ": "
                  << res.failures.size() << " failures, "
                  << rca::escapesFor(res, rep.component)
                  << " escaped on "
                  << faults::faultComponentName(rep.component)
                  << " (expected " << rep.expectEscapes << ") -> "
                  << (ok ? "reproduced" : "MISMATCH") << "\n";
        return ok ? 0 : 1;
    }

    // ------------------------------------------------ plant-escape
    if (plantEscape) {
        std::uint64_t seed = parseU64(seedBaseOpt, 1);
        Scenario sc = plantEscapeScenario(seed);
        CampaignResult res = rca::runCampaign(sc, rcfg);
        std::uint64_t escapes = 0;
        for (const Failure &f : res.failures)
            escapes += f.escaped ? 1 : 0;
        std::cout << "planted " << sc.describe() << ": "
                  << res.failures.size() << " failures, " << escapes
                  << " escaped\n";
        if (!escapes) {
            std::cout << "FAIL: the planted monitor-miss campaign "
                         "produced no escaped failure\n";
            return 1;
        }
        Reproducer rep = rca::makeReproducer(sc, res);
        Reproducer shrunk = rca::shrinkReproducer(rep, rcfg);
        std::cout << "shrunk  " << shrunk.scenario.describe() << ": "
                  << shrunk.scenario.requestCount() << " requests ("
                  << sc.requestCount() << " before, "
                  << shrunk.shrinkRuns << " runs)\n";
        if (!rca::replayReproducer(shrunk, rcfg)) {
            std::cout << "FAIL: shrunk reproducer did not replay to "
                         "the same verdict\n";
            return 1;
        }
        if (!reproDir.empty()) {
            std::string path = reproDir + "/planted_escape.json";
            std::ofstream out(path);
            fatal_if(!out, "cannot write reproducer ", path);
            out << rca::reproducerToJson(shrunk);
            std::cout << "reproducer written: " << path << "\n";
        }
        std::cout << "ok: planted escape caught by replay, shrunk, "
                     "and round-tripped\n";
        return 0;
    }

    // --------------------------------------------------- the sweep
    const std::uint64_t seedBase = parseU64(seedBaseOpt, 1);
    const std::uint64_t nSeeds =
        parseU64(seedsOpt, smoke ? 50 : 20);
    std::vector<double> rates;
    for (const std::string &tok :
         splitList(ratesOpt.empty()
                       ? (smoke ? "0.5" : "0.1,0.5,1.0")
                       : ratesOpt))
        rates.push_back(std::strtod(tok.c_str(), nullptr));

    const auto &kinds = faults::allFaultKinds();
    const std::size_t nCells = kinds.size() * rates.size() * nSeeds;

    std::cout << "vulnerability map: " << kinds.size() << " fault "
              << "kinds x " << rates.size() << " rates x " << nSeeds
              << " seeds from " << seedBase << " ("
              << rca::describeRcaConfig(rcfg) << ")\n";
    if (!ablateSpec.empty())
        std::cout << "ablations: " << ablateSpec << "\n";
    std::cout << "\n";

    auto cells = sweep.run(nCells, [&](std::size_t i) {
        std::size_t kindIdx = i / (rates.size() * nSeeds);
        std::size_t rem = i % (rates.size() * nSeeds);
        Cell cell;
        cell.kind = kinds[kindIdx];
        cell.rate = rates[rem / nSeeds];
        cell.seed = seedBase + rem % nSeeds;
        cell.scenario =
            makeCampaignScenario(cell.kind, cell.rate, cell.seed);
        cell.result = rca::runCampaign(cell.scenario, rcfg);
        return cell;
    });

    // ------------------------------------------------- aggregation
    std::vector<Bucket> byComponent(faults::faultComponentCount);
    std::vector<Bucket> byKind(faults::faultKindCount);
    std::uint64_t totalInjected = 0, totalFailures = 0,
                  totalEscaped = 0, memoryDiverged = 0;
    for (const Cell &cell : cells) {
        Bucket &kb = byKind[static_cast<std::size_t>(cell.kind)];
        ++kb.cells;
        kb.injected += cell.result.injectedTotal;
        totalInjected += cell.result.injectedTotal;
        memoryDiverged += cell.result.memoryDiverged ? 1 : 0;
        Bucket &cb = byComponent[static_cast<std::size_t>(
            faults::componentOf(cell.kind))];
        ++cb.cells;
        cb.injected += cell.result.injectedTotal;
        for (const Failure &f : cell.result.failures) {
            ++totalFailures;
            totalEscaped += f.escaped ? 1 : 0;
            kb.add(f);
            byComponent[static_cast<std::size_t>(
                            f.hasSite ? f.component
                                      : faults::componentOf(cell.kind))]
                .add(f);
        }
    }

    // -------------------------------------- ranked component table
    std::vector<std::size_t> rank(faults::faultComponentCount);
    for (std::size_t i = 0; i < rank.size(); ++i)
        rank[i] = i;
    std::stable_sort(rank.begin(), rank.end(),
                     [&](std::size_t a, std::size_t b) {
                         return byComponent[a].failures >
                                byComponent[b].failures;
                     });

    std::cout << std::left << std::setw(18) << "component"
              << std::right << std::setw(9) << "injected"
              << std::setw(9) << "failures" << std::setw(9)
              << "det_mon" << std::setw(9) << "det_rep"
              << std::setw(9) << "escaped" << std::setw(8) << "silent"
              << std::setw(10) << "mon_p50" << std::setw(10)
              << "mon_p95" << std::setw(10) << "rep_p50"
              << std::setw(10) << "rep_p95" << "\n";
    for (std::size_t idx : rank) {
        const Bucket &b = byComponent[idx];
        std::cout << std::left << std::setw(18)
                  << faults::faultComponentName(
                         faults::allFaultComponents()[idx])
                  << std::right << std::setw(9) << b.injected
                  << std::setw(9) << b.failures << std::setw(9)
                  << b.detMonitor << std::setw(9) << b.detReplay
                  << std::setw(9) << b.escaped << std::setw(8)
                  << b.silent;
        printLatencyCols(std::cout, b);
        std::cout << "\n";
    }

    std::cout << "\n" << std::left << std::setw(18) << "fault kind"
              << std::right << std::setw(7) << "cells"
              << std::setw(9) << "injected" << std::setw(9)
              << "failures" << std::setw(9) << "det_mon"
              << std::setw(9) << "escaped" << "\n";
    for (std::size_t i = 0; i < byKind.size(); ++i) {
        const Bucket &b = byKind[i];
        std::cout << std::left << std::setw(18)
                  << faults::faultKindName(kinds[i]) << std::right
                  << std::setw(7) << b.cells << std::setw(9)
                  << b.injected << std::setw(9) << b.failures
                  << std::setw(9) << b.detMonitor << std::setw(9)
                  << b.escaped << "\n";
    }

    std::cout << "\n" << nCells << " campaigns, " << totalInjected
              << " injections, " << totalFailures << " failures, "
              << totalEscaped << " escaped, " << memoryDiverged
              << " memory-diverged\n";

    // --------------------------- reproducers for escaped cells
    // Serial and in cell order: the shrinker's evaluation sequence
    // is part of the deterministic output contract. Every escaped
    // cell yields a reproducer and an in-process round trip; the
    // expensive greedy shrink runs on the first rca.max_reproducers
    // of them (0 = all).
    std::uint64_t escapedCells = 0, reproduced = 0,
                  roundTripFailed = 0, shrunkCells = 0;
    for (const Cell &cell : cells) {
        if (!cell.escapes())
            continue;
        ++escapedCells;
        Reproducer rep =
            rca::makeReproducer(cell.scenario, cell.result);
        bool doShrink = !rcfg.maxReproducers ||
                        shrunkCells < rcfg.maxReproducers;
        if (doShrink) {
            ++shrunkCells;
            rep = rca::shrinkReproducer(rep, rcfg);
        }
        bool ok = rca::replayReproducer(rep, rcfg);
        reproduced += ok ? 1 : 0;
        roundTripFailed += ok ? 0 : 1;
        std::cout << "escape "
                  << faults::faultComponentName(rep.component)
                  << " s" << cell.seed << " r" << cell.rate << ": "
                  << cell.scenario.requestCount() << " -> "
                  << rep.scenario.requestCount() << " requests ("
                  << (doShrink ? "shrunk, " : "unshrunk, ")
                  << rep.shrinkRuns << " runs) "
                  << (ok ? "round-trip ok" : "ROUND-TRIP MISMATCH")
                  << "\n";
        if (!reproDir.empty()) {
            std::string path = reproDir + "/" + reproName(cell);
            std::ofstream out(path);
            fatal_if(!out, "cannot write reproducer ", path);
            out << rca::reproducerToJson(rep);
        }
    }
    if (escapedCells)
        std::cout << escapedCells << " escaped cells, " << shrunkCells
                  << " shrunk, " << reproduced
                  << " round-tripped\n";

    bool failed = roundTripFailed != 0;

    // ------------------------------------------- smoke self-checks
    if (smoke) {
        const Bucket &verdictBucket = byComponent[static_cast<
            std::size_t>(faults::FaultComponent::MonitorVerdict)];
        if (verdictBucket.monitorLatency.empty() ||
            verdictBucket.replayLatency.empty()) {
            std::cout << "SMOKE FAIL: no monitor-verdict latency "
                         "samples to compare\n";
            failed = true;
        } else {
            Cycles monP50 = resilience::percentile(
                verdictBucket.monitorLatency, 50);
            Cycles repP50 = resilience::percentile(
                verdictBucket.replayLatency, 50);
            std::cout << "smoke: monitor-verdict detection p50 "
                      << monP50 << " (in-band) vs " << repP50
                      << " (replay)\n";
            if (repP50 >= monP50) {
                std::cout << "SMOKE FAIL: replay detection is not "
                             "strictly faster than the delayed "
                             "in-band verdict\n";
                failed = true;
            }
        }
        if (totalEscaped == 0) {
            std::cout << "SMOKE FAIL: no fault class escaped the "
                         "in-band monitors (replay found nothing "
                         "they missed)\n";
            failed = true;
        }
        if (!failed)
            std::cout << "smoke: self-checks ok\n";
    }
    return failed ? 1 : 0;
}
