/**
 * @file
 * The perf-regression kernel: a canonical three-workload sweep over
 * the simulator's hot paths, timed end to end and exported as
 * machine-readable JSON for scripts/perf_gate.sh.
 *
 * Workloads (all fixed-seed, all bit-identical across hosts):
 *
 *   recovery_storm  idle-heavy attack storm against a corrupt macro
 *                   level: long inter-arrival gaps the event-skipping
 *                   kernel jumps over, with every burst driving the
 *                   ladder through rejuvenation + re-checkpoint. The
 *                   checkpoint capture/verify/restore paths dominate.
 *   overload_storm  saturated storm with admission control armed:
 *                   guard, shed, retry, and FIFO backpressure paths.
 *   monitor_stream  clean high-rate legitimate load, no attacks, no
 *                   guard: the core engine, trace FIFO, and monitor
 *                   verification paths.
 *   adaptive_storm  closed-loop arrivals: a probe-burst adversary
 *                   plans moves into the schedule's dynamic heap from
 *                   the defense's own feedback while a periodic
 *                   rejuvenation policy fires proactive restores —
 *                   the adaptive-arrival and policy paths end to end.
 *   cluster_storm   a small fleet behind the load balancer: Zipf
 *                   sharding, per-node links, round-based NodeHandle
 *                   stepping, and the shared resurrector pool — the
 *                   cluster scheduler paths end to end.
 *
 * Simulation results (executed/served/shed counts, end ticks) go to
 * stdout and are deterministic; wall-clock timing never touches
 * stdout and is written to the path given by --json. The stdout
 * digest is the equivalence check, the JSON is the perf trajectory.
 *
 * INDRA_PERF_SYNTHETIC_SLOWDOWN=<fraction> busy-spins for that
 * fraction of each workload's measured time after it completes —
 * the hook the CI gate's self-test uses to prove a >15% regression
 * actually fails the pipeline. It perturbs timing only, never the
 * simulation.
 *
 * Usage: bench_perf_kernel [--smoke] [--json PATH]
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "adversary/adversary_config.hh"
#include "bench_util.hh"
#include "cluster/cluster.hh"
#include "faults/fault_plan.hh"
#include "resilience/storm.hh"

using namespace indra;

namespace
{

struct WorkloadResult
{
    std::string name;
    std::uint64_t executed = 0;
    std::uint64_t served = 0;
    std::uint64_t sheds = 0;
    Tick endTick = 0;
    double wallSeconds = 0;
    std::uint64_t ops = 0; //!< executed requests
};

struct WorkloadSpec
{
    std::string name;
    std::string daemon = "httpd";
    double legitRate = 1.0;
    std::uint64_t legitRequests = 100;
    double attackRate = 0;
    std::uint32_t burst = 1;
    std::uint32_t bound = 0; //!< 0 = guard disarmed
    bool plantDormant = false;
    std::string faultSpec;
    std::uint64_t adversaryBudget = 0; //!< 0 = static attack timeline
    adversary::AdversaryStrategy adversaryStrategy =
        adversary::AdversaryStrategy::Fixed;
    bool proactiveRestore = false; //!< arm a periodic rejuvenation policy
    CheckpointScheme scheme = CheckpointScheme::DeltaBackup;
    std::uint32_t domains = 0; //!< 0 = config default
};

double
syntheticSlowdown()
{
    const char *env = std::getenv("INDRA_PERF_SYNTHETIC_SLOWDOWN");
    if (!env || !*env)
        return 0.0;
    double f = std::atof(env);
    return f > 0 ? f : 0.0;
}

/** Busy-spin for @p seconds without touching the simulation state. */
void
spinFor(double seconds)
{
    using clock = std::chrono::steady_clock;
    auto until = clock::now() +
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(seconds));
    volatile std::uint64_t sink = 0;
    while (clock::now() < until)
        sink = sink + 1;
    (void)sink;
}

WorkloadResult
runWorkload(const WorkloadSpec &spec)
{
    SystemConfig cfg;
    cfg.physMemBytes = 128ULL * 1024 * 1024;
    cfg.consecutiveFailureThreshold = 4;
    cfg.checkpointScheme = spec.scheme;
    if (spec.domains)
        cfg.domainCount = spec.domains;

    resilience::ResilienceConfig rc;
    if (spec.bound != 0) {
        rc.queueBound = spec.bound;
        rc.fifoHighWater = 48;
        rc.degradeViolations = 2;
        rc.quarantineFailStreak = 2;
        rc.healServedStreak = 3;
    }
    if (spec.proactiveRestore) {
        rc.rejuvenation.trigger = resilience::RejuvenationTrigger::Periodic;
        rc.rejuvenation.period = 10000000;
        rc.rejuvenation.cooldown = 4000000;
    }

    faults::FaultPlan fplan;
    if (!spec.faultSpec.empty())
        fplan = faults::FaultPlan::parse(spec.faultSpec);

    net::DaemonProfile profile = net::daemonByName(spec.daemon);
    profile.instrPerRequest = 25000;

    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRequests = spec.legitRequests;
    plan.legitRatePerMCycle = spec.legitRate;
    plan.attackRatePerMCycle = spec.attackRate;
    plan.burstLen = spec.burst;
    plan.attackKind = net::AttackKind::StackSmash;
    plan.plantDormant = spec.plantDormant;
    plan.deadline = 3000000;
    plan.probePeriod = 50000;
    if (spec.adversaryBudget != 0) {
        plan.adversary.armed = true;
        plan.adversary.strategy = spec.adversaryStrategy;
        plan.adversary.budget = spec.adversaryBudget;
        plan.adversary.burstLen = spec.burst;
        plan.adversary.baseGap = 500000;
        plan.adversary.payload = net::AttackKind::StackSmash;
    }

    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();

    core::IndraSystem sys(core::NodeConfig{cfg, fplan, rc});
    sys.boot();
    std::size_t slot = sys.deployService(profile);

    WorkloadResult res;
    res.name = spec.name;
    resilience::StormReport rep = sys.runStorm(slot, plan);
    res.executed = rep.executed;
    res.served = rep.legitServed;
    res.sheds = rep.shedTotal();
    res.endTick = rep.endTick;

    auto t1 = clock::now();
    res.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.ops = res.executed;

    double slow = syntheticSlowdown();
    if (slow > 0) {
        spinFor(res.wallSeconds * slow);
        res.wallSeconds *= (1.0 + slow);
    }
    return res;
}

/**
 * The cluster scheduler's hot paths end to end: Zipf sharding, link
 * posting, round-based NodeHandle stepping, and shared-pool
 * arbitration. Runs serial (the timed artifact must not depend on
 * host parallelism).
 */
WorkloadResult
runClusterWorkload(bool smoke)
{
    core::NodeConfig node;
    node.system.physMemBytes = 128ULL * 1024 * 1024;
    node.system.consecutiveFailureThreshold = 4;
    node.system.macroCheckpointPeriod = 10;
    node.system.rejuvenationCycles = 2000000;
    node.resilience.queueBound = 6;
    node.resilience.fifoHighWater = 24;
    node.resilience.degradeViolations = 2;
    node.resilience.quarantineFailStreak = 2;
    node.resilience.healServedStreak = 3;

    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRatePerMCycle = 1.0;
    plan.deadline = 8000000;
    plan.probePeriod = 50000;
    plan.adversary.armed = true;
    plan.adversary.strategy = adversary::AdversaryStrategy::Reinfect;
    plan.adversary.budget = smoke ? 10 : 40;
    plan.adversary.burstLen = 4;
    plan.adversary.baseGap = 500000;
    plan.adversary.payload = net::AttackKind::StackSmash;
    plan.adversary.reinfectDelay = 100000;

    cluster::ClusterConfig cc;
    cc.nodes = 6;
    cc.poolSlots = 2;
    cc.users = smoke ? 20000 : 200000;
    cc.requests = (smoke ? 25ULL : 400ULL) * cc.nodes;
    cc.arrivalRatePerMCycle = 1.2 * cc.nodes;
    cc.link.ratePerMCycle = 40.0;

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25000;

    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();

    cluster::ClusterSim sim(node, plan, cc, profile);
    harness::ParallelSweep serial(1);
    cluster::ClusterReport rep = sim.run(serial);

    WorkloadResult res;
    res.name = "cluster_storm";
    for (const auto &nr : rep.nodeReports)
        res.executed += nr.executed;
    res.served = rep.legitServed;
    res.sheds = rep.shedTotal;
    res.endTick = rep.endTick;

    auto t1 = clock::now();
    res.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.ops = res.executed;

    double slow = syntheticSlowdown();
    if (slow > 0) {
        spinFor(res.wallSeconds * slow);
        res.wallSeconds *= (1.0 + slow);
    }
    return res;
}

void
writeJson(const std::string &path,
          const std::vector<WorkloadResult> &results)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "bench_perf_kernel: cannot write " << path
                  << "\n";
        std::exit(1);
    }
    double total = 0;
    for (const WorkloadResult &r : results)
        total += r.wallSeconds;
    os << "{\n  \"schema\": \"indra-perf-kernel-v1\",\n"
       << "  \"benches\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        double ops_per_sec = r.wallSeconds > 0
            ? static_cast<double>(r.ops) / r.wallSeconds
            : 0.0;
        os << "    {\"name\": \"" << r.name << "\", "
           << "\"wall_seconds\": " << std::setprecision(6)
           << std::fixed << r.wallSeconds << ", "
           << "\"ops\": " << r.ops << ", "
           << "\"ops_per_sec\": " << std::setprecision(3)
           << ops_per_sec << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"total_wall_seconds\": " << std::setprecision(6)
       << total << "\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: bench_perf_kernel [--smoke] "
                         "[--json PATH]\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    // The canonical sweep. Sizes are chosen so each workload runs in
    // seconds on a development host; --smoke shrinks them ~20x for CI
    // functional coverage (the gate always uses the full sizes).
    std::vector<WorkloadSpec> specs;
    {
        // The headline: a sparse legitimate trickle (long idle gaps
        // the kernel skips in one jump) under an unguarded 16/Mcycle
        // burst storm — every attack executes, is detected, and walks
        // the recovery ladder, so checkpoint verify/capture/restore
        // dominates the wall clock.
        WorkloadSpec w;
        w.name = "recovery_storm";
        w.legitRate = 0.5;
        w.legitRequests = smoke ? 10 : 100;
        w.attackRate = 16.0;
        w.burst = 8;
        w.bound = 0;
        specs.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "overload_storm";
        w.legitRate = 1.0;
        w.legitRequests = smoke ? 20 : 900;
        w.attackRate = 8.0;
        w.burst = 4;
        w.bound = 6;
        specs.push_back(w);
    }
    {
        WorkloadSpec w;
        w.name = "monitor_stream";
        w.legitRate = 4.0;
        w.legitRequests = smoke ? 40 : 1400;
        w.attackRate = 0.0;
        w.bound = 0;
        specs.push_back(w);
    }
    {
        // The closed loop: every attack arrival is planned mid-run by
        // the probe-burst adversary from defense feedback (dynamic-
        // heap pushes interleaved with the static arena), and the
        // periodic policy exercises the proactive-restore path.
        WorkloadSpec w;
        w.name = "adaptive_storm";
        w.legitRate = 1.0;
        w.legitRequests = smoke ? 20 : 700;
        w.burst = 4;
        w.bound = 6;
        w.adversaryBudget = smoke ? 60 : 1200;
        w.adversaryStrategy = adversary::AdversaryStrategy::ProbeBurst;
        w.proactiveRestore = true;
        specs.push_back(w);
    }
    {
        // The fourth scheme's hot path: a reinfect adversary keeps
        // the confined rewind on the clock — per-store anchor capture
        // plus the memcpy-bound page-copy restore — with legitimate
        // traffic round-robined over 8 compartments.
        WorkloadSpec w;
        w.name = "domain_rewind";
        w.scheme = CheckpointScheme::DomainRewind;
        w.domains = 8;
        w.legitRate = 1.0;
        w.legitRequests = smoke ? 20 : 700;
        w.burst = 4;
        w.bound = 6;
        w.adversaryBudget = smoke ? 60 : 1200;
        w.adversaryStrategy = adversary::AdversaryStrategy::Reinfect;
        specs.push_back(w);
    }

    std::cout << "Perf kernel: canonical hot-path sweep\n\n"
              << std::left << std::setw(16) << "workload"
              << std::right << std::setw(10) << "executed"
              << std::setw(10) << "served"
              << std::setw(10) << "sheds"
              << std::setw(14) << "end_mcycle" << "\n";

    std::vector<WorkloadResult> results;
    for (const WorkloadSpec &spec : specs)
        results.push_back(runWorkload(spec));
    results.push_back(runClusterWorkload(smoke));
    for (const WorkloadResult &r : results) {
        std::cout << std::left << std::setw(16) << r.name
                  << std::right << std::setw(10) << r.executed
                  << std::setw(10) << r.served
                  << std::setw(10) << r.sheds
                  << std::setw(14) << std::fixed
                  << std::setprecision(1)
                  << static_cast<double>(r.endTick) / 1e6
                  << "\n";
    }

    if (!json_path.empty())
        writeJson(json_path, results);
    return 0;
}
