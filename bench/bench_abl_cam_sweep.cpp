/**
 * @file
 * Ablation: filter CAM size sweep beyond the paper's two points
 * (0 = no filter through 256 entries). Residual code-origin checks
 * and the monitoring overhead they would induce.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_abl_cam_sweep",
                            "Ablation: filter CAM size sweep");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.checkpointScheme = CheckpointScheme::None;
    benchutil::printHeader("Ablation: filter CAM size sweep", base);

    const std::vector<std::uint32_t> sizes = {0, 8, 16, 32, 64, 128,
                                              256};
    benchutil::ObsCollector collector("bench_abl_cam_sweep", cli.obs());
    collector.resize(sizes.size());
    std::cout << std::left << std::setw(10) << "entries"
              << std::right << std::setw(16) << "residual_%"
              << std::setw(20) << "origin_records/req" << "\n";

    net::DaemonProfile profile = net::daemonByName("httpd");
    struct Row { double residual, records; };
    auto rows = sweep.run(sizes.size(), [&](std::size_t i) {
        SystemConfig cfg = base;
        cfg.filterCamEntries = sizes[i];
        auto run = benchutil::runBenign(core::NodeConfig{cfg}, profile, 2, 6,
                                        collector.traceFor(i));
        auto &cam = run.serviceSlot().core->filterCam();
        collector.snapshot(i, "cam_" + std::to_string(sizes[i]),
                           run.system->rootStats());
        return Row{cam.missRatio() * 100.0,
                   (cam.lookups() - cam.hits()) / 6.0};
    });
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::cout << std::left << std::setw(10) << sizes[i]
                  << std::right << std::fixed << std::setprecision(3)
                  << std::setw(16) << rows[i].residual
                  << std::setprecision(0)
                  << std::setw(20) << rows[i].records << "\n";
    }
    std::cout << "\npaper: 32 entries already waive >90% of checks"
              << std::endl;
    collector.write();
    return 0;
}
