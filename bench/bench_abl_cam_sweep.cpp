/**
 * @file
 * Ablation: filter CAM size sweep beyond the paper's two points
 * (0 = no filter through 256 entries). Residual code-origin checks
 * and the monitoring overhead they would induce.
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig base;
    base.checkpointScheme = CheckpointScheme::None;
    benchutil::printHeader("Ablation: filter CAM size sweep", base);

    const std::vector<std::uint32_t> sizes = {0, 8, 16, 32, 64, 128,
                                              256};
    std::cout << std::left << std::setw(10) << "entries"
              << std::right << std::setw(16) << "residual_%"
              << std::setw(20) << "origin_records/req" << "\n";

    net::DaemonProfile profile = net::daemonByName("httpd");
    for (std::uint32_t size : sizes) {
        SystemConfig cfg = base;
        cfg.filterCamEntries = size;
        auto run = benchutil::runBenign(cfg, profile, 2, 6);
        auto &cam = run.serviceSlot().core->filterCam();
        double residual = cam.missRatio() * 100.0;
        double records =
            (cam.lookups() - cam.hits()) / 6.0;
        std::cout << std::left << std::setw(10) << size
                  << std::right << std::fixed << std::setprecision(3)
                  << std::setw(16) << residual << std::setprecision(0)
                  << std::setw(20) << records << "\n";
    }
    std::cout << "\npaper: 32 entries already waive >90% of checks"
              << std::endl;
    return 0;
}
