/**
 * @file
 * Ablation: delta-backup line granularity (32B / 64B / 128B).
 *
 * The paper backs up at the L2 line (64B). Finer lines copy less data
 * but keep more per-page state; coarser lines amplify every first
 * write. This sweep quantifies the trade on the heavy writer (bind)
 * and a typical daemon (httpd).
 */

#include "bench_util.hh"

#include "checkpoint/delta_backup.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig base;
    base.monitorEnabled = false;
    benchutil::printHeader(
        "Ablation: delta backup line granularity", base);

    std::cout << std::left << std::setw(10) << "daemon"
              << std::setw(10) << "lineB"
              << std::right << std::setw(16) << "backup_cyc/req"
              << std::setw(16) << "lines/req"
              << std::setw(14) << "bytes/req" << "\n";

    for (const auto &name : {"httpd", "bind"}) {
        net::DaemonProfile profile = net::daemonByName(name);
        for (std::uint32_t line : {32u, 64u, 128u}) {
            SystemConfig cfg = base;
            cfg.backupLineBytes = line;
            auto run = benchutil::runBenign(cfg, profile, 2, 6);
            auto &policy = *run.serviceSlot().policy;
            double lines = static_cast<double>(policy.linesBackedUp());
            std::cout << std::left << std::setw(10) << name
                      << std::setw(10) << line
                      << std::right << std::fixed
                      << std::setprecision(0) << std::setw(16)
                      << policy.backupCycles() / 6.0
                      << std::setw(16) << lines / 6.0
                      << std::setw(14) << lines * line / 6.0 << "\n";
        }
    }
    std::cout << "\nfiner lines copy fewer bytes; coarser lines cut "
                 "per-line bookkeeping — 64B is the sweet spot"
              << std::endl;
    return 0;
}
