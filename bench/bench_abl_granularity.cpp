/**
 * @file
 * Ablation: delta-backup line granularity (32B / 64B / 128B).
 *
 * The paper backs up at the L2 line (64B). Finer lines copy less data
 * but keep more per-page state; coarser lines amplify every first
 * write. This sweep quantifies the trade on the heavy writer (bind)
 * and a typical daemon (httpd).
 */

#include "bench_util.hh"

#include "checkpoint/delta_backup.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_abl_granularity",
                            "Ablation: delta backup line granularity");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.monitorEnabled = false;
    benchutil::printHeader(
        "Ablation: delta backup line granularity", base);

    std::cout << std::left << std::setw(10) << "daemon"
              << std::setw(10) << "lineB"
              << std::right << std::setw(16) << "backup_cyc/req"
              << std::setw(16) << "lines/req"
              << std::setw(14) << "bytes/req" << "\n";

    const std::vector<std::string> names = {"httpd", "bind"};
    const std::vector<std::uint32_t> lineSizes = {32, 64, 128};
    benchutil::ObsCollector collector("bench_abl_granularity",
                                      cli.obs());
    collector.resize(names.size() * lineSizes.size());
    struct Row { double backup_cyc, lines; };
    auto rows = sweep.run(
        names.size() * lineSizes.size(), [&](std::size_t i) {
            net::DaemonProfile profile =
                net::daemonByName(names[i / lineSizes.size()]);
            SystemConfig cfg = base;
            cfg.backupLineBytes = lineSizes[i % lineSizes.size()];
            auto run = benchutil::runBenign(core::NodeConfig{cfg}, profile, 2, 6,
                                            collector.traceFor(i));
            collector.snapshot(
                i,
                profile.name + ".line" +
                    std::to_string(cfg.backupLineBytes),
                run.system->rootStats());
            auto &policy = *run.serviceSlot().policy;
            return Row{policy.backupCycles() / 6.0,
                       static_cast<double>(policy.linesBackedUp())};
        });
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::uint32_t line = lineSizes[i % lineSizes.size()];
        std::cout << std::left << std::setw(10)
                  << names[i / lineSizes.size()]
                  << std::setw(10) << line
                  << std::right << std::fixed
                  << std::setprecision(0) << std::setw(16)
                  << rows[i].backup_cyc
                  << std::setw(16) << rows[i].lines / 6.0
                  << std::setw(14) << rows[i].lines * line / 6.0
                  << "\n";
    }
    std::cout << "\nfiner lines copy fewer bytes; coarser lines cut "
                 "per-line bookkeeping — 64B is the sweet spot"
              << std::endl;
    collector.write();
    return 0;
}
