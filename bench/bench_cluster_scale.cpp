/**
 * @file
 * Cluster-scale serving sweep: goodput and recovery tails vs fleet
 * size and resurrector:resurrectee ratio under correlated attack
 * storms.
 *
 * Each cell builds a ClusterSim: Zipf-skewed synthetic users sharded
 * across a fleet of revivable nodes behind token-bucket links, every
 * node running the same adaptive attack storm in phase (the
 * correlated worst case for a shared recovery pool), and all macro
 * restores / rejuvenations contending for an M:N resurrector pool
 * sized ratio * nodes. The cluster interleaves its nodes on the
 * bench's ParallelSweep; one fixed-seed cell is bit-identical for any
 * --jobs count.
 *
 * Reported per cell:
 *   goodput   served legitimate requests per Mcycle, fleet-wide
 *   raw_tput  executed requests (attacks included) per Mcycle
 *   shed_rate sheds / (sheds + legit arrivals)
 *   p99       legit response time p99, cycles
 *   rec_p99   recovery latency p99 including pool queueing, cycles
 *   wait_p99  pool queueing delay p99, cycles
 *   grants    pool grants (queued grants in parens)
 *   reinf     re-infections across the fleet
 *   imbal     max/mean node arrivals (Zipf + hash sharding skew)
 *
 * Usage: bench_cluster_scale [--jobs N] [--smoke]
 *                            [--nodes N[,N...]] [--ratio R[,R...]]
 *                            [--zipf THETA] [--users N]
 *                            [--ablate K=V[,K=V...]]
 * --ablate routes dotted NodeConfig keys (SystemConfig fields,
 * faults.plan, adversary./rejuvenation./resilience./domain.*) into
 * every node of every cell.
 * --smoke runs a CI-sized slice and self-checks the headline claims:
 * goodput degrades gracefully (no cliff) as the pool ratio shrinks,
 * recovery p99 and pool wait p99 grow monotonically with pool
 * contention, and the Zipf sharder produces visible imbalance.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster.hh"

using namespace indra;

namespace
{

struct Cell
{
    std::uint32_t nodes = 0;
    double ratio = 0.0;
    cluster::ClusterReport rep;
};

core::NodeConfig
baseNode()
{
    core::NodeConfig node;
    node.system.physMemBytes = 128ULL * 1024 * 1024;
    node.system.consecutiveFailureThreshold = 4;
    node.system.macroCheckpointPeriod = 10;
    node.system.rejuvenationCycles = 2000000;
    node.resilience.queueBound = 6;
    node.resilience.fifoHighWater = 24;
    node.resilience.degradeViolations = 2;
    node.resilience.quarantineFailStreak = 2;
    node.resilience.healServedStreak = 3;
    return node;
}

resilience::StormPlan
stormPlan(bool smoke)
{
    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRatePerMCycle = 1.0; // unused: the balancer injects
    plan.deadline = 8000000;
    plan.probePeriod = 50000;
    // The adaptive attacker from the survivability matrix, striking
    // every node of the fleet in phase.
    plan.adversary.armed = true;
    plan.adversary.strategy = adversary::AdversaryStrategy::Reinfect;
    plan.adversary.budget = smoke ? 24 : 60;
    plan.adversary.burstLen = 4;
    plan.adversary.baseGap = 500000;
    plan.adversary.payload = net::AttackKind::StackSmash;
    plan.adversary.reinfectDelay = 100000;
    return plan;
}

std::uint32_t
poolSlotsFor(std::uint32_t nodes, double ratio)
{
    double slots = ratio * static_cast<double>(nodes);
    auto rounded = static_cast<std::uint32_t>(slots + 0.5);
    return std::max(1u, rounded);
}

Cell
runCell(std::uint32_t nodes, double ratio,
        const benchutil::ClusterOptions &copts,
        const std::vector<std::string> &ablations, bool smoke,
        harness::ParallelSweep &sweep)
{
    core::NodeConfig node = baseNode();
    core::applyNodeSettings(node, ablations);

    cluster::ClusterConfig cc;
    cc.nodes = nodes;
    cc.poolSlots = poolSlotsFor(nodes, ratio);
    cc.users = copts.users(smoke ? 20000 : 200000);
    cc.zipfTheta = copts.zipfTheta(0.99);
    cc.requests = (smoke ? 220ULL : 900ULL) * nodes;
    cc.arrivalRatePerMCycle = 1.2 * nodes;
    cc.seed = 1;
    cc.link.ratePerMCycle = 40.0;

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25000;

    cluster::ClusterSim sim(node, stormPlan(smoke), cc, profile);
    Cell cell;
    cell.nodes = nodes;
    cell.ratio = ratio;
    cell.rep = sim.run(sweep);
    return cell;
}

void
printCell(const Cell &c)
{
    const cluster::ClusterReport &r = c.rep;
    double shed_rate =
        r.shedTotal + r.legitArrivals
            ? static_cast<double>(r.shedTotal) /
                  static_cast<double>(r.shedTotal + r.legitArrivals)
            : 0.0;
    std::ostringstream label;
    label << c.nodes << "n:" << std::fixed << std::setprecision(3)
          << c.ratio << " (" << r.poolSlots << "s)";
    std::ostringstream grants;
    grants << r.poolGrants << "(" << r.poolQueuedGrants << ")";
    std::cout << std::left << std::setw(18) << label.str()
              << std::right << std::setw(9) << std::fixed
              << std::setprecision(3) << r.goodput()
              << std::setw(9) << r.rawThroughput()
              << std::setw(10) << shed_rate
              << std::setw(11) << r.legitP99
              << std::setw(12) << r.recoveryP99
              << std::setw(11) << r.poolWaitP99
              << std::setw(10) << grants.str()
              << std::setw(7) << r.reinfections
              << std::setw(8) << std::setprecision(3)
              << r.arrivalImbalance() << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli(
        "bench_cluster_scale",
        "Fleet sweep: goodput and recovery p99 vs node count and "
        "resurrector:resurrectee ratio under correlated storms");
    bool smoke = false;
    std::string ablate_spec;
    benchutil::ClusterOptions copts;
    cli.flag("--smoke", "CI-sized slice with self-checks", &smoke);
    cli.option("--ablate", "K=V[,K=V...]",
               "dotted NodeConfig overrides applied to every node of "
               "every cell",
               &ablate_spec);
    cli.clusterPreset(&copts);
    auto sweep = cli.parse(argc, argv);

    std::vector<std::string> ablations;
    {
        std::stringstream ss(ablate_spec);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty())
                ablations.push_back(tok);
        }
    }

    std::vector<std::uint32_t> nodeAxis = copts.nodeCounts(
        smoke ? std::vector<std::uint32_t>{4}
              : std::vector<std::uint32_t>{2, 4, 8, 16});
    std::vector<double> ratioAxis = copts.ratios(
        smoke ? std::vector<double>{1.0, 0.5, 0.25}
              : std::vector<double>{1.0, 0.5, 0.25, 0.125});

    benchutil::printHeader(
        "Cluster scale: fleet size x resurrector pool ratio",
        baseNode().system);
    if (!ablations.empty())
        std::cout << "ablations: " << ablate_spec << "\n\n";
    std::cout << std::left << std::setw(18) << "cell" << std::right
              << std::setw(9) << "goodput"
              << std::setw(9) << "raw_tput"
              << std::setw(10) << "shed_rate"
              << std::setw(11) << "p99"
              << std::setw(12) << "rec_p99"
              << std::setw(11) << "wait_p99"
              << std::setw(10) << "grants"
              << std::setw(7) << "reinf"
              << std::setw(8) << "imbal" << "\n";

    // The outer sweep is serial: each cell's ClusterSim interleaves
    // its own nodes on the (possibly parallel) sweep, and the cells
    // print in axis order either way.
    std::vector<Cell> cells;
    for (std::uint32_t nodes : nodeAxis) {
        for (double ratio : ratioAxis) {
            cells.push_back(runCell(nodes, ratio, copts, ablations,
                                    smoke, sweep));
            printCell(cells.back());
        }
    }

    if (!smoke)
        return 0;

    // ------------------------------------------------- self checks
    int failures = 0;
    auto check = [&failures](bool ok, const std::string &what) {
        if (!ok) {
            std::cout << "SMOKE CHECK FAILED: " << what << "\n";
            ++failures;
        }
    };

    // Per fleet size, walk the ratio axis from the richest pool to
    // the most starved (ratios descend by construction).
    for (std::size_t base = 0; base < cells.size();
         base += ratioAxis.size()) {
        const Cell &rich = cells[base];
        const Cell &starved = cells[base + ratioAxis.size() - 1];
        std::string tag = std::to_string(rich.nodes) + " nodes";

        // The storms landed and the pool actually arbitrated.
        check(rich.rep.attackArrivals > 0,
              "no attacks reached the fleet (" + tag + ")");
        check(starved.rep.poolQueuedGrants > 0,
              "starved pool never queued a restore (" + tag + ")");

        // Graceful degradation: shrinking the pool costs goodput but
        // does not collapse it (no cliff).
        check(starved.rep.goodput() <=
                  rich.rep.goodput() * 1.02 + 1e-9,
              "starving the pool should not raise goodput (" + tag +
                  ")");
        check(starved.rep.goodput() >= 0.5 * rich.rep.goodput(),
              "goodput fell off a cliff as the pool starved (" + tag +
                  ")");

        // Contention tails: pool wait p99 grows monotonically as the
        // ratio shrinks, and the recovery tail grows with it.
        for (std::size_t r = 1; r < ratioAxis.size(); ++r) {
            const Cell &prev = cells[base + r - 1];
            const Cell &cur = cells[base + r];
            check(cur.rep.poolWaitP99 >= prev.rep.poolWaitP99,
                  "pool wait p99 shrank as the pool starved (" + tag +
                      ")");
            check(cur.rep.recoveryP99 >= prev.rep.recoveryP99,
                  "recovery p99 shrank as the pool starved (" + tag +
                      ")");
        }
        check(starved.rep.recoveryP99 > rich.rep.recoveryP99,
              "pool contention never showed up in recovery p99 (" +
                  tag + ")");
    }

    // The Zipf sharder skews load: some node sees measurably more
    // than the mean.
    bool skewed = false;
    for (const Cell &c : cells)
        skewed = skewed || c.rep.arrivalImbalance() > 1.02;
    check(skewed, "Zipf sharding produced no visible imbalance");

    // The fleet stayed up: even the starved cells keep serving a
    // substantial fraction of the legit load under the correlated
    // worst-case storm (graceful degradation, not collapse).
    for (const Cell &c : cells) {
        check(c.rep.legitServed * 3 > c.rep.legitArrivals,
              "a cell collapsed under the correlated storm");
    }

    if (failures == 0)
        std::cout << "\nall smoke checks passed\n";
    return failures == 0 ? 0 : 1;
}
