/**
 * @file
 * Table 2: which inspection mechanism detects which exploit class.
 *
 * Reproduces the paper's matrix by launching each attack class
 * against a monitored service and reporting the violation that the
 * resurrector raises first.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_table2_detection",
                            "Table 2: remote exploit inspection");
    auto sweep = cli.parse(argc, argv);
    SystemConfig cfg;
    benchutil::printHeader("Table 2: remote exploit inspection", cfg);

    const std::vector<net::AttackKind> kinds = {
        net::AttackKind::StackSmash,   net::AttackKind::CodeInjection,
        net::AttackKind::FuncPtrHijack, net::AttackKind::FormatString,
        net::AttackKind::DosFlood,
    };

    std::cout << std::left << std::setw(18) << "attack"
              << std::setw(20) << "violation raised"
              << std::setw(22) << "outcome"
              << "matches Table 2\n";

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 40000;
    benchutil::ObsCollector collector("bench_table2_detection",
                                      cli.obs());
    collector.resize(kinds.size());
    auto outs = sweep.run(kinds.size(), [&](std::size_t i) {
        core::IndraSystem sys(core::NodeConfig{cfg});
        sys.attachTraceLog(collector.traceFor(i));
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        sys.runScript(net::ClientScript::benign(2), slot);

        net::ServiceRequest req;
        req.seq = 3;
        req.attack = kinds[i];
        auto out = sys.processRequest(slot, req);
        collector.snapshot(i, net::attackKindName(kinds[i]),
                           sys.rootStats());
        return out;
    });
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const auto &out = outs[i];
        bool matches =
            out.violation == net::expectedViolation(kinds[i]) &&
            out.status != net::RequestStatus::Lost &&
            out.status != net::RequestStatus::Served;
        std::cout << std::left << std::setw(18)
                  << net::attackKindName(kinds[i]) << std::setw(20)
                  << mon::violationName(out.violation) << std::setw(22)
                  << net::requestStatusName(out.status)
                  << (matches ? "yes" : "NO") << "\n";
    }
    std::cout << "\nTable 2 mapping: stack smash -> call/return "
                 "inspection;\ninjected code -> code origin; function "
                 "pointer / virtual function -> control transfer\n";
    collector.write();
    return 0;
}
