/**
 * @file
 * Adaptive-adversary survivability matrix: sweep attacker strategy x
 * proactive rejuvenation policy and measure what the closed loop
 * costs the defense — and what proactive restores buy back.
 *
 * The attacker axis starts with the classic precomputed storm
 * timeline ("static") and then the four closed-loop strategies, each
 * granted the SAME total request budget the static storm actually
 * delivered, so every comparison is at equal attack volume. The
 * defense axis runs the reactive recovery ladder alone ("none") and
 * then each proactive rejuvenation trigger.
 *
 * Every cell is a pure function of (config, StormPlan): adversary
 * decisions derive from a per-strategy PCG32 stream plus signals of a
 * deterministic run, so the table is bit-identical for any --jobs.
 *
 * Reported per cell:
 *   goodput   served legitimate requests per Mcycle
 *   raw_tput  executed requests (attacks included) per Mcycle
 *   shed_rate sheds / (sheds + executed)
 *   p99       legit response time p99, cycles
 *   rec_p99   p99 latency of requests needing any recovery
 *   moves     adversary moves planned (0 for the static timeline)
 *   reinf     re-infections (dormant damage replanted after a heal)
 *   t_reinf   first heal -> first re-infection, cycles (0 = never)
 *   proact    proactive restores fired ahead of a monitor verdict
 *
 * Usage: bench_adaptive_adversary [--jobs N] [--smoke]
 *                                 [--ablate K=V[,K=V...]]
 * --ablate applies dotted adversary.* / rejuvenation.* /
 * resilience.* / domain.* overrides to every cell (the
 * ablation-matrix flags).
 * --smoke shrinks the workload and self-checks: equal budgets, at
 * least one adaptive strategy strictly under the static attacker's
 * goodput, at least one caught re-infection, and at least one
 * proactive policy at or above the reactive-only goodput under the
 * reinfect attacker.
 */

#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "resilience/ablation.hh"
#include "resilience/storm.hh"

using namespace indra;

namespace
{

/** The attacker axis: the static timeline plus every strategy. */
struct AttackerSpec
{
    const char *label;
    bool adaptive;
    adversary::AdversaryStrategy strategy;
};

constexpr AttackerSpec attackers[] = {
    {"static", false, adversary::AdversaryStrategy::Fixed},
    {"fixed", true, adversary::AdversaryStrategy::Fixed},
    {"probe-burst", true, adversary::AdversaryStrategy::ProbeBurst},
    {"reinfect", true, adversary::AdversaryStrategy::Reinfect},
    {"latency-tuner", true, adversary::AdversaryStrategy::LatencyTuner},
};
constexpr std::size_t nAttackers =
    sizeof(attackers) / sizeof(attackers[0]);

constexpr resilience::RejuvenationTrigger policies[] = {
    resilience::RejuvenationTrigger::None,
    resilience::RejuvenationTrigger::Periodic,
    resilience::RejuvenationTrigger::Epoch,
    resilience::RejuvenationTrigger::Suspicion,
};
constexpr std::size_t nPolicies = sizeof(policies) / sizeof(policies[0]);

struct Cell
{
    std::string label;
    resilience::StormReport rep;
};

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.physMemBytes = 128ULL * 1024 * 1024;
    cfg.consecutiveFailureThreshold = 4;
    // Macro epochs frequent enough for the epoch trigger to count
    // them, and rejuvenation priced so a proactive restore competes
    // with the recovery cascades it pre-empts rather than dwarfing
    // the whole run.
    cfg.macroCheckpointPeriod = 10;
    cfg.rejuvenationCycles = 2000000;
    return cfg;
}

resilience::ResilienceConfig
defenseConfig(resilience::RejuvenationTrigger trigger)
{
    resilience::ResilienceConfig rc;
    rc.queueBound = 6;
    rc.fifoHighWater = 24;
    rc.degradeViolations = 2;
    rc.quarantineFailStreak = 2;
    rc.healServedStreak = 3;
    rc.rejuvenation.trigger = trigger;
    // Policies tuned to the storm horizon (tens of Mcycles): a few
    // restores per run, not one per request.
    rc.rejuvenation.period = 10000000;
    rc.rejuvenation.epochLimit = 3;
    rc.rejuvenation.suspicionThreshold = 12.0;
    rc.rejuvenation.cooldown = 4000000;
    return rc;
}

resilience::StormPlan
stormPlan(const AttackerSpec &a, std::uint64_t budget,
          std::uint64_t legit_requests)
{
    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRequests = legit_requests;
    plan.legitRatePerMCycle = 1.0;
    plan.deadline = 3000000;
    plan.probePeriod = 50000;
    if (!a.adaptive) {
        plan.attackRatePerMCycle = 8.0;
        plan.burstLen = 4;
        plan.attackKind = net::AttackKind::StackSmash;
    } else {
        plan.adversary.armed = true;
        plan.adversary.strategy = a.strategy;
        plan.adversary.budget = budget;
        plan.adversary.burstLen = 4;
        plan.adversary.baseGap = 500000;
        plan.adversary.payload = net::AttackKind::StackSmash;
        plan.adversary.reinfectDelay = 100000;
    }
    return plan;
}

Cell
runCell(const AttackerSpec &a, resilience::RejuvenationTrigger policy,
        std::uint64_t budget, std::uint64_t legit_requests,
        const std::vector<std::string> &ablations,
        benchutil::ObsCollector &collector, std::size_t cell_idx)
{
    resilience::ResilienceConfig rc = defenseConfig(policy);
    resilience::StormPlan plan = stormPlan(a, budget, legit_requests);
    SystemConfig cfg = baseConfig();
    // Command-line overrides land on top of the matrix cell, so a
    // single flag sweeps the whole table through a what-if (the full
    // router also accepts domain.* keys).
    resilience::applyAblationSettings(cfg, plan.adversary, rc,
                                      ablations);

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 25000;

    core::IndraSystem sys(core::NodeConfig{cfg, faults::FaultPlan(), rc});
    sys.attachTraceLog(collector.traceFor(cell_idx));
    sys.boot();
    std::size_t slot = sys.deployService(profile);

    Cell cell;
    cell.label = std::string(a.label) + ":" +
                 resilience::rejuvenationTriggerName(policy);
    cell.rep = sys.runStorm(slot, plan);
    collector.snapshot(cell_idx, cell.label, sys.rootStats());
    return cell;
}

void
printCell(const Cell &c)
{
    const resilience::StormReport &r = c.rep;
    double shed_rate =
        r.shedTotal() + r.executed
            ? static_cast<double>(r.shedTotal()) /
                  static_cast<double>(r.shedTotal() + r.executed)
            : 0.0;
    std::cout << std::left << std::setw(24) << c.label << std::right
              << std::setw(9) << std::fixed << std::setprecision(3)
              << r.goodput()
              << std::setw(9) << r.rawThroughput()
              << std::setw(10) << shed_rate
              << std::setw(11) << r.legitP99
              << std::setw(11) << r.recoveryP99
              << std::setw(7) << r.adversaryMoves
              << std::setw(7) << r.reinfections
              << std::setw(11) << r.timeToReinfection
              << std::setw(8) << r.proactiveRestores << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli(
        "bench_adaptive_adversary",
        "Survivability matrix: adaptive attacker strategies vs "
        "proactive rejuvenation policies, at equal attack budget");
    bool smoke = false;
    std::string ablate_spec;
    cli.flag("--smoke", "CI-sized subset with self-checks", &smoke);
    cli.option("--ablate", "K=V[,K=V...]",
               "dotted adversary.*/rejuvenation.*/resilience.*/"
               "domain.* overrides applied to every cell",
               &ablate_spec);
    auto sweep = cli.parse(argc, argv);

    std::vector<std::string> ablations;
    {
        std::stringstream ss(ablate_spec);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (!tok.empty())
                ablations.push_back(tok);
        }
    }

    const std::uint64_t legit_requests = smoke ? 60 : 140;

    // The equal-budget anchor: run the static storm once, up front,
    // and grant every adaptive attacker exactly the request volume it
    // delivered. A pure rerun of the same cell appears in the matrix,
    // so the anchor costs one extra run but keeps the sweep uniform.
    benchutil::ObsCollector collector("bench_adaptive_adversary",
                                      cli.obs());
    const std::size_t n = nAttackers * nPolicies;
    collector.resize(n);
    std::uint64_t budget;
    {
        resilience::ResilienceConfig rc =
            defenseConfig(resilience::RejuvenationTrigger::None);
        resilience::StormPlan plan =
            stormPlan(attackers[0], 0, legit_requests);
        net::DaemonProfile profile = net::daemonByName("httpd");
        profile.instrPerRequest = 25000;
        core::IndraSystem sys(core::NodeConfig{baseConfig(), faults::FaultPlan(), rc});
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        budget = sys.runStorm(slot, plan).attackArrivals;
    }

    benchutil::printHeader(
        "Adaptive adversary: strategy x rejuvenation policy, budget " +
            std::to_string(budget),
        baseConfig());
    if (!ablations.empty())
        std::cout << "ablations: " << ablate_spec << "\n\n";
    std::cout << std::left << std::setw(24) << "cell" << std::right
              << std::setw(9) << "goodput"
              << std::setw(9) << "raw_tput"
              << std::setw(10) << "shed_rate"
              << std::setw(11) << "p99"
              << std::setw(11) << "rec_p99"
              << std::setw(7) << "moves"
              << std::setw(7) << "reinf"
              << std::setw(11) << "t_reinf"
              << std::setw(8) << "proact" << "\n";

    auto cells = sweep.run(n, [&](std::size_t i) {
        const AttackerSpec &a = attackers[i / nPolicies];
        resilience::RejuvenationTrigger policy = policies[i % nPolicies];
        return runCell(a, policy, budget, legit_requests, ablations,
                       collector, i);
    });

    for (const Cell &c : cells)
        printCell(c);

    if (!smoke) {
        collector.write();
        return 0;
    }

    // ------------------------------------------------- self checks
    int failures = 0;
    auto check = [&failures](bool ok, const std::string &what) {
        if (!ok) {
            std::cout << "SMOKE CHECK FAILED: " << what << "\n";
            ++failures;
        }
    };
    auto cellAt = [&](std::size_t attacker,
                      std::size_t policy) -> const Cell & {
        return cells[attacker * nPolicies + policy];
    };

    // Equal budgets actually held: no adaptive attacker overspent.
    for (std::size_t a = 1; a < nAttackers; ++a) {
        for (std::size_t p = 0; p < nPolicies; ++p) {
            const Cell &c = cellAt(a, p);
            check(c.rep.adversaryRequests <= budget,
                  "adversary overspent its budget (" + c.label + ")");
            check(c.rep.adversaryMoves > 0,
                  "adaptive attacker never moved (" + c.label + ")");
        }
    }

    // (a) Adaptation pays: against the reactive-only defense, some
    // closed-loop strategy beats the static timeline — strictly less
    // defense goodput at the same attack volume.
    double static_good = cellAt(0, 0).rep.goodput();
    double worst_adaptive = static_good;
    for (std::size_t a = 1; a < nAttackers; ++a) {
        double g = cellAt(a, 0).rep.goodput();
        if (g < worst_adaptive)
            worst_adaptive = g;
    }
    check(worst_adaptive < static_good,
          "no adaptive strategy beat the static attacker's goodput "
          "damage at equal budget");

    // The reinfect attacker must actually land a caught re-infection
    // against the reactive defense.
    check(cellAt(3, 0).rep.reinfections >= 1,
          "reinfect attacker never re-infected the reactive defense");

    // (b) Proactive rejuvenation pays: under the reinfect attacker,
    // at least one proactive policy restores goodput to at least the
    // reactive-only level.
    double reactive_good = cellAt(3, 0).rep.goodput();
    bool proactive_recovers = false;
    for (std::size_t p = 1; p < nPolicies; ++p) {
        const Cell &c = cellAt(3, p);
        // Only a policy that actually fired counts: a trigger that
        // never crosses its boundary is the reactive run in disguise.
        if (c.rep.proactiveRestores >= 1 &&
            c.rep.goodput() >= reactive_good)
            proactive_recovers = true;
    }
    check(proactive_recovers,
          "no proactive policy that fired recovered the reactive-only "
          "goodput under the reinfect attacker");

    // Proactive policies must actually fire somewhere.
    std::uint64_t proact = 0;
    for (std::size_t a = 0; a < nAttackers; ++a) {
        for (std::size_t p = 1; p < nPolicies; ++p)
            proact += cellAt(a, p).rep.proactiveRestores;
    }
    check(proact > 0, "no proactive restore fired anywhere");

    if (failures == 0)
        std::cout << "\nall smoke checks passed\n";
    collector.write();
    return failures == 0 ? 0 : 1;
}
