/**
 * @file
 * Ablation: how expensive can the resurrector's software checks get
 * before monitoring overhead becomes visible? Sweeps a multiplier
 * over all per-record check costs ("tens or even hundreds of
 * instructions", Section 3.2.5) and reports the mean response-time
 * overhead across the six daemons.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_abl_monitor_cost",
                            "Ablation: monitor check-cost scaling");
    auto sweep = cli.parse(argc, argv);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;

    benchutil::printHeader(
        "Ablation: monitor check-cost scaling", base);

    std::cout << std::left << std::setw(10) << "scale"
              << std::right << std::setw(16) << "overhead_%" << "\n";

    const std::vector<double> scales = {0.25, 0.5, 1.0, 2.0, 4.0};
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_abl_monitor_cost",
                                      cli.obs());
    collector.resize(scales.size() * daemons.size());
    // One cell per (scale, daemon); each recomputes its own baseline
    // run, matching the historical serial loop exactly.
    auto overheads = sweep.run(
        scales.size() * daemons.size(), [&](std::size_t i) {
            double scale = scales[i / daemons.size()];
            SystemConfig cfg = base;
            cfg.monitorEnabled = true;
            cfg.codeOriginCheckCycles = static_cast<Cycles>(
                cfg.codeOriginCheckCycles * scale);
            cfg.callReturnCheckCycles = static_cast<Cycles>(
                cfg.callReturnCheckCycles * scale);
            cfg.ctrlTransferCheckCycles = static_cast<Cycles>(
                cfg.ctrlTransferCheckCycles * scale);
            if (cfg.callReturnCheckCycles == 0)
                cfg.callReturnCheckCycles = 1;

            const auto &profile = daemons[i % daemons.size()];
            auto off = benchutil::runBenign(core::NodeConfig{base}, profile, 2, 4);
            auto on = benchutil::runBenign(core::NodeConfig{cfg}, profile, 2, 4,
                                           collector.traceFor(i));
            std::ostringstream label;
            label << profile.name << ".x" << scale;
            collector.snapshot(i, label.str(),
                               on.system->rootStats());
            return (on.totalResponse() / off.totalResponse() - 1.0) *
                100.0;
        });
    for (std::size_t s = 0; s < scales.size(); ++s) {
        double sum = 0;
        for (std::size_t d = 0; d < daemons.size(); ++d)
            sum += overheads[s * daemons.size() + d];
        std::cout << std::left << std::setw(10) << scales[s]
                  << std::right << std::fixed << std::setprecision(3)
                  << std::setw(16) << sum / daemons.size() << "\n";
    }
    std::cout << "\nsoftware monitoring stays cheap until checks cost "
                 "several hundred resurrector cycles" << std::endl;
    collector.write();
    return 0;
}
