/**
 * @file
 * Ablation: how expensive can the resurrector's software checks get
 * before monitoring overhead becomes visible? Sweeps a multiplier
 * over all per-record check costs ("tens or even hundreds of
 * instructions", Section 3.2.5) and reports the mean response-time
 * overhead across the six daemons.
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;

    benchutil::printHeader(
        "Ablation: monitor check-cost scaling", base);

    std::cout << std::left << std::setw(10) << "scale"
              << std::right << std::setw(16) << "overhead_%" << "\n";

    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        SystemConfig cfg = base;
        cfg.monitorEnabled = true;
        cfg.codeOriginCheckCycles = static_cast<Cycles>(
            cfg.codeOriginCheckCycles * scale);
        cfg.callReturnCheckCycles = static_cast<Cycles>(
            cfg.callReturnCheckCycles * scale);
        cfg.ctrlTransferCheckCycles = static_cast<Cycles>(
            cfg.ctrlTransferCheckCycles * scale);
        if (cfg.callReturnCheckCycles == 0)
            cfg.callReturnCheckCycles = 1;

        double sum = 0;
        for (const auto &profile : net::standardDaemons()) {
            auto off = benchutil::runBenign(base, profile, 2, 4);
            auto on = benchutil::runBenign(cfg, profile, 2, 4);
            sum += (on.totalResponse() / off.totalResponse() - 1.0) *
                100.0;
        }
        std::cout << std::left << std::setw(10) << scale << std::right
                  << std::fixed << std::setprecision(3) << std::setw(16)
                  << sum / net::standardDaemons().size() << "\n";
    }
    std::cout << "\nsoftware monitoring stays cheap until checks cost "
                 "several hundred resurrector cycles" << std::endl;
    return 0;
}
