/**
 * @file
 * Figure 12: impact of the shared trace-FIFO size on normalized
 * service response time (averaged over the six daemons).
 *
 * Paper shape: a 16-entry queue noticeably stalls the resurrectees;
 * performance saturates from 32 entries up.
 */

#include "bench_util.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    const std::vector<std::uint32_t> sizes = {8, 16, 24, 32, 48, 64};

    SystemConfig cfg;
    cfg.checkpointScheme = CheckpointScheme::None;
    benchutil::printHeader(
        "Figure 12: normalized response time vs trace-FIFO size", cfg);

    // Per-size mean response across daemons, normalized to the
    // largest queue.
    std::vector<double> means;
    for (std::uint32_t size : sizes) {
        SystemConfig c = cfg;
        c.traceFifoEntries = size;
        double total = 0;
        for (const auto &profile : net::standardDaemons()) {
            auto run = benchutil::runBenign(c, profile, 2, 5);
            total += run.meanResponse();
        }
        means.push_back(total / net::standardDaemons().size());
    }

    std::cout << std::left << std::setw(12) << "entries"
              << std::right << std::setw(14) << "normalized"
              << std::setw(18) << "stall_cycles/req" << "\n";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::cout << std::left << std::setw(12) << sizes[i]
                  << std::right << std::setw(14) << std::fixed
                  << std::setprecision(4) << means[i] / means.back()
                  << "\n";
    }
    std::cout << "\npaper: 16 entries too small; saturation at >= 32"
              << std::endl;
    return 0;
}
