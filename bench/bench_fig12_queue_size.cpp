/**
 * @file
 * Figure 12: impact of the shared trace-FIFO size on normalized
 * service response time (averaged over the six daemons).
 *
 * Paper shape: a 16-entry queue noticeably stalls the resurrectees;
 * performance saturates from 32 entries up.
 */

#include "bench_util.hh"

using namespace indra;

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli("bench_fig12_queue_size",
                            "Figure 12: normalized response time vs trace-FIFO size");
    auto sweep = cli.parse(argc, argv);
    const std::vector<std::uint32_t> sizes = {8, 16, 24, 32, 48, 64};

    SystemConfig cfg;
    cfg.checkpointScheme = CheckpointScheme::None;
    benchutil::printHeader(
        "Figure 12: normalized response time vs trace-FIFO size", cfg);

    // Per-size mean response across daemons, normalized to the
    // largest queue. One sweep cell per (size, daemon) pair.
    const auto &daemons = net::standardDaemons();
    benchutil::ObsCollector collector("bench_fig12_queue_size",
                                      cli.obs());
    collector.resize(sizes.size() * daemons.size());
    auto cellMeans =
        sweep.run(sizes.size() * daemons.size(), [&](std::size_t i) {
            SystemConfig c = cfg;
            c.traceFifoEntries = sizes[i / daemons.size()];
            auto run = benchutil::runBenign(
                core::NodeConfig{c}, daemons[i % daemons.size()], 2, 5,
                collector.traceFor(i));
            collector.snapshot(
                i,
                daemons[i % daemons.size()].name + ".fifo" +
                    std::to_string(c.traceFifoEntries),
                run.system->rootStats());
            return run.meanResponse();
        });
    std::vector<double> means;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        double total = 0;
        for (std::size_t d = 0; d < daemons.size(); ++d)
            total += cellMeans[s * daemons.size() + d];
        means.push_back(total / daemons.size());
    }

    std::cout << std::left << std::setw(12) << "entries"
              << std::right << std::setw(14) << "normalized"
              << std::setw(18) << "stall_cycles/req" << "\n";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::cout << std::left << std::setw(12) << sizes[i]
                  << std::right << std::setw(14) << std::fixed
                  << std::setprecision(4) << means[i] / means.back()
                  << "\n";
    }
    std::cout << "\npaper: 16 entries too small; saturation at >= 32"
              << std::endl;
    collector.write();
    return 0;
}
