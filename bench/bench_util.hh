/**
 * @file
 * Shared helpers for the experiment-reproduction benches: building
 * systems, running warm measured request batches, and printing
 * paper-style tables.
 */

#ifndef INDRA_BENCH_UTIL_HH
#define INDRA_BENCH_UTIL_HH

#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "harness/parallel_sweep.hh"
#include "net/client.hh"
#include "net/daemon_profile.hh"
#include "sim/config_reader.hh"
#include "sim/logging.hh"

namespace indra::benchutil
{

/**
 * Build the bench's ParallelSweep from its command line: honors
 * "--jobs N" / "jobs=N" / INDRA_JOBS (default hardware_concurrency;
 * --jobs 1 reproduces the historical serial loop exactly). Cells run
 * shared-nothing — each builds its own IndraSystem — and results come
 * back in cell order, so the printed tables are bit-identical for any
 * job count.
 */
inline harness::ParallelSweep
sweepFromCli(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return harness::ParallelSweep(parseJobs(args));
}

/** One measured run of one daemon under one configuration. */
struct Run
{
    std::unique_ptr<core::IndraSystem> system;
    std::size_t slot = 0;
    std::vector<net::RequestOutcome> outcomes;

    core::ServiceSlot &serviceSlot() { return system->slot(slot); }

    /** Sum of response times over the measured outcomes. */
    double
    totalResponse() const
    {
        double t = 0;
        for (const auto &o : outcomes)
            t += static_cast<double>(o.responseTime());
        return t;
    }

    /** Mean response time over the measured outcomes. */
    double
    meanResponse() const
    {
        return outcomes.empty() ? 0.0
                                : totalResponse() / outcomes.size();
    }
};

/**
 * Boot a system, deploy @p profile, run @p warmup benign requests,
 * reset statistics, then run @p script and return the outcomes.
 */
inline Run
runScript(const SystemConfig &cfg, const net::DaemonProfile &profile,
          std::uint64_t warmup,
          const std::vector<net::ServiceRequest> &script)
{
    Run run;
    run.system = std::make_unique<core::IndraSystem>(cfg);
    run.system->boot();
    run.slot = run.system->deployService(profile);
    for (const auto &req : net::ClientScript::benign(warmup))
        run.system->processRequest(run.slot, req);
    run.serviceSlot().statGroup->resetAll();
    run.outcomes = run.system->runScript(script, run.slot);
    return run;
}

/** Benign-only convenience wrapper. */
inline Run
runBenign(const SystemConfig &cfg, const net::DaemonProfile &profile,
          std::uint64_t warmup, std::uint64_t measured)
{
    auto script = net::ClientScript::benign(measured);
    for (auto &r : script)
        r.seq += warmup;
    return runScript(cfg, profile, warmup, script);
}

/** Print the standard bench header with the Table 4 parameters. */
inline void
printHeader(const std::string &title, const SystemConfig &cfg)
{
    std::cout << "==============================================\n"
              << title << "\n"
              << "==============================================\n";
    cfg.print(std::cout);
    std::cout << "\n";
}

/** Print one row: name + columns, aligned. */
inline void
printRow(const std::string &name, const std::vector<double> &cols,
         int precision = 3)
{
    std::cout << std::left << std::setw(12) << name;
    for (double c : cols) {
        std::cout << std::right << std::setw(14) << std::fixed
                  << std::setprecision(precision) << c;
    }
    std::cout << "\n";
}

/** Print the column header row. */
inline void
printCols(const std::vector<std::string> &names)
{
    std::cout << std::left << std::setw(12) << "daemon";
    for (const auto &n : names)
        std::cout << std::right << std::setw(14) << n;
    std::cout << "\n";
}

} // namespace indra::benchutil

#endif // INDRA_BENCH_UTIL_HH
