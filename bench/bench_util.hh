/**
 * @file
 * Shared helpers for the experiment-reproduction benches: building
 * systems, running warm measured request batches, and printing
 * paper-style tables.
 */

#ifndef INDRA_BENCH_UTIL_HH
#define INDRA_BENCH_UTIL_HH

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/node_config.hh"
#include "core/system.hh"
#include "harness/parallel_sweep.hh"
#include "net/client.hh"
#include "net/daemon_profile.hh"
#include "obs/json.hh"
#include "obs/stat_sinks.hh"
#include "obs/trace_log.hh"
#include "obs/trace_sinks.hh"
#include "sim/config_reader.hh"
#include "sim/logging.hh"

namespace indra::benchutil
{

/**
 * The observability slice of a bench command line: where to export
 * the stats tree (--stats-json) and the structured event trace
 * (--trace / --trace-format). Both default off, in which case the
 * bench's stdout is bit-identical to a build without the obs layer.
 */
struct ObsOptions
{
    std::string statsJsonPath; //!< --stats-json PATH ("" = off)
    std::string tracePath;     //!< --trace PATH ("" = off)
    std::string formatName = "jsonl"; //!< --trace-format name
    obs::TraceFormat traceFormat = obs::TraceFormat::Jsonl;

    bool wantStats() const { return !statsJsonPath.empty(); }
    bool wantTrace() const { return !tracePath.empty(); }
};

/**
 * Build the bench's ParallelSweep from its command line: honors
 * "--jobs N" / "jobs=N" / INDRA_JOBS (default hardware_concurrency;
 * --jobs 1 reproduces the historical serial loop exactly). Cells run
 * shared-nothing — each builds its own IndraSystem — and results come
 * back in cell order, so the printed tables are bit-identical for any
 * job count.
 */
inline harness::ParallelSweep
sweepFromCli(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return harness::ParallelSweep(parseJobs(args));
}

/**
 * The cluster slice of a bench command line: fleet shape and user
 * skew for the cluster-scale sweeps. Registered as a BenchCli preset
 * (clusterPreset()) so every cluster bench spells the flags the same
 * way; the raw strings are parsed lazily with fatal() on a typo.
 */
struct ClusterOptions
{
    std::string nodesSpec; //!< --nodes N[,N...] ("" = bench default)
    std::string ratioSpec; //!< --ratio R[,R...] resurrector:resurrectee
    std::string zipfSpec;  //!< --zipf THETA user popularity skew
    std::string usersSpec; //!< --users N synthetic user population

    /** Parse "--nodes 1,2,4"; @p defaults when the flag was absent. */
    std::vector<std::uint32_t>
    nodeCounts(std::vector<std::uint32_t> defaults) const
    {
        if (nodesSpec.empty())
            return defaults;
        std::vector<std::uint32_t> out;
        for (const std::string &tok : splitList(nodesSpec, "--nodes")) {
            unsigned long v = 0;
            std::size_t used = 0;
            try {
                v = std::stoul(tok, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            fatal_if(used != tok.size() || v == 0,
                     "--nodes wants positive integers, got '", tok, "'");
            out.push_back(static_cast<std::uint32_t>(v));
        }
        return out;
    }

    /** Parse "--ratio 0.25,0.5,1"; @p defaults when absent. */
    std::vector<double>
    ratios(std::vector<double> defaults) const
    {
        if (ratioSpec.empty())
            return defaults;
        std::vector<double> out;
        for (const std::string &tok : splitList(ratioSpec, "--ratio")) {
            double v = parseDouble(tok, "--ratio");
            fatal_if(v <= 0.0, "--ratio wants positive ratios, got '",
                     tok, "'");
            out.push_back(v);
        }
        return out;
    }

    /** Parse "--zipf 0.99"; @p fallback when absent. */
    double
    zipfTheta(double fallback) const
    {
        if (zipfSpec.empty())
            return fallback;
        double v = parseDouble(zipfSpec, "--zipf");
        fatal_if(v < 0.0, "--zipf wants a skew >= 0, got '", zipfSpec,
                 "'");
        return v;
    }

    /** Parse "--users 1000000"; @p fallback when absent. */
    std::uint64_t
    users(std::uint64_t fallback) const
    {
        if (usersSpec.empty())
            return fallback;
        unsigned long long v = 0;
        std::size_t used = 0;
        try {
            v = std::stoull(usersSpec, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        fatal_if(used != usersSpec.size() || v == 0,
                 "--users wants a positive integer, got '", usersSpec,
                 "'");
        return v;
    }

  private:
    static std::vector<std::string>
    splitList(const std::string &spec, const char *flag)
    {
        std::vector<std::string> out;
        std::string tok;
        std::istringstream is(spec);
        while (std::getline(is, tok, ','))
            out.push_back(tok);
        fatal_if(out.empty(), flag, " wants a comma-separated list");
        return out;
    }

    static double
    parseDouble(const std::string &tok, const char *flag)
    {
        double v = 0.0;
        std::size_t used = 0;
        try {
            v = std::stod(tok, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        fatal_if(used != tok.size(), flag, " wants numbers, got '", tok,
                 "'");
        return v;
    }
};

/**
 * The shared bench command line: every sweep bench registers its
 * flags/options here, gets --help and --jobs for free, and rejects
 * anything unrecognized instead of silently ignoring a typo
 * ("--smkoe" running the full-size sweep is how CI timeouts happen).
 *
 *     BenchCli cli("bench_foo", "what the bench measures");
 *     bool smoke = false;
 *     cli.flag("--smoke", "run the CI-sized subset", &smoke);
 *     auto sweep = cli.parse(argc, argv);
 */
class BenchCli
{
  public:
    BenchCli(std::string prog, std::string summary)
        : progName(std::move(prog)), progSummary(std::move(summary))
    {
        // Every sweep bench exports the same way; register the
        // observability options once, here, instead of in 18 benches.
        option("--stats-json", "PATH",
               "write the final stats tree as JSON", &obsOpts.statsJsonPath);
        option("--trace", "PATH",
               "write the structured event trace", &obsOpts.tracePath);
        option("--trace-format", "jsonl|chrome",
               "trace file format (default jsonl)", &obsOpts.formatName);
    }

    /** The parsed observability options (valid after parse()). */
    const ObsOptions &obs() const { return obsOpts; }

    /**
     * Register the cluster sweep preset: --nodes/--ratio/--zipf/
     * --users land in @p out (which must outlive parse()).
     */
    void
    clusterPreset(ClusterOptions *out)
    {
        option("--nodes", "N[,N...]",
               "fleet sizes to sweep (resurrectee nodes)",
               &out->nodesSpec);
        option("--ratio", "R[,R...]",
               "resurrector:resurrectee pool ratios to sweep",
               &out->ratioSpec);
        option("--zipf", "THETA",
               "Zipf skew of synthetic user popularity",
               &out->zipfSpec);
        option("--users", "N", "synthetic user population",
               &out->usersSpec);
    }

    /** Register a boolean flag (present -> *out = true). */
    void
    flag(const std::string &name, const std::string &desc, bool *out)
    {
        flags.push_back(Flag{name, desc, out});
    }

    /** Register a value option ("--name VALUE" or "--name=VALUE"). */
    void
    option(const std::string &name, const std::string &value_name,
           const std::string &desc, std::string *out)
    {
        options.push_back(Option{name, value_name, desc, out});
    }

    /**
     * Parse the command line. Handles --help/-h (print and exit 0)
     * and the --jobs forms, fills the registered flags and options,
     * and dies on anything else.
     */
    harness::ParallelSweep
    parse(int argc, char **argv)
    {
        std::vector<std::string> args(argv + 1, argv + argc);
        unsigned jobs = parseJobs(args); // removes the --jobs forms
        for (auto it = args.begin(); it != args.end();) {
            const std::string &arg = *it;
            if (arg == "--help" || arg == "-h") {
                printHelp(std::cout);
                std::exit(0);
            }
            if (auto *f = findFlag(arg)) {
                *f->out = true;
                it = args.erase(it);
                continue;
            }
            bool matched = false;
            for (Option &o : options) {
                if (arg == o.name) {
                    fatal_if(it + 1 == args.end(), o.name,
                             " needs a value (", o.valueName, ")");
                    *o.out = *(it + 1);
                    it = args.erase(it, it + 2);
                    matched = true;
                    break;
                }
                if (arg.rfind(o.name + "=", 0) == 0) {
                    *o.out = arg.substr(o.name.size() + 1);
                    it = args.erase(it);
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
            fatal(progName, ": unrecognized command-line flag '", arg,
                  "' (try --help)");
        }
        // Validate eagerly so a typo dies before the sweep runs.
        obsOpts.traceFormat = obs::traceFormatFromName(obsOpts.formatName);
        return harness::ParallelSweep(jobs);
    }

  private:
    struct Flag
    {
        std::string name;
        std::string desc;
        bool *out;
    };
    struct Option
    {
        std::string name;
        std::string valueName;
        std::string desc;
        std::string *out;
    };

    Flag *
    findFlag(const std::string &name)
    {
        for (Flag &f : flags) {
            if (f.name == name)
                return &f;
        }
        return nullptr;
    }

    void
    printHelp(std::ostream &os) const
    {
        os << "usage: " << progName << " [options]\n\n"
           << progSummary << "\n\noptions:\n";
        auto line = [&os](const std::string &lhs,
                          const std::string &desc) {
            os << "  " << std::left << std::setw(26) << lhs << desc
               << "\n";
        };
        line("--help", "print this help and exit");
        line("--jobs N",
             "sweep worker threads (default: hardware concurrency; "
             "1 = serial)");
        for (const Flag &f : flags)
            line(f.name, f.desc);
        for (const Option &o : options)
            line(o.name + " " + o.valueName, o.desc);
    }

    std::string progName;
    std::string progSummary;
    std::vector<Flag> flags;
    std::vector<Option> options;
    ObsOptions obsOpts;
};

/**
 * Per-cell observability capture for a ParallelSweep bench.
 *
 * resize(n) is called once, before the sweep, from the main thread;
 * after that each cell only touches its own index, so worker threads
 * never contend. traceFor(i) hands cell i its private TraceLog (null
 * when no --trace was given — the zero-cost-when-off contract), and
 * snapshot(i, label, root) renders cell i's stats tree to a pending
 * JSON fragment (callable several times per cell — e.g. one system
 * per table row). write() merges everything *in cell order*, so the
 * files are bit-identical for any --jobs count.
 */
class ObsCollector
{
  public:
    ObsCollector(std::string bench, ObsOptions options)
        : benchName(std::move(bench)), opts(std::move(options))
    {
    }

    /** Pre-size the per-cell slots (main thread, before the sweep). */
    void
    resize(std::size_t cells)
    {
        slots.resize(cells);
        if (opts.wantTrace()) {
            for (Cell &c : slots) {
                if (!c.log)
                    c.log = std::make_unique<obs::TraceLog>();
            }
        }
    }

    /** Cell @p i's event log, or nullptr when tracing is off. */
    obs::TraceLog *
    traceFor(std::size_t i)
    {
        return i < slots.size() ? slots[i].log.get() : nullptr;
    }

    /** Render cell @p i's stats tree under @p label (cell thread). */
    void
    snapshot(std::size_t i, const std::string &label,
             const stats::StatGroup &root)
    {
        if (!opts.wantStats() || i >= slots.size())
            return;
        std::ostringstream os;
        os << "{\"cell\":" << i << ",\"label\":";
        obs::jsonString(os, label);
        os << ",\"stats\":";
        obs::JsonStatSink sink(os);
        root.accept(sink);
        os << "}";
        slots[i].snaps.push_back(os.str());
    }

    /** Merge and write the requested files (main thread, post-sweep). */
    void
    write() const
    {
        if (opts.wantStats()) {
            std::ofstream out(opts.statsJsonPath);
            fatal_if(!out, "cannot write ", opts.statsJsonPath);
            out << "{\"bench\":";
            obs::jsonString(out, benchName);
            out << ",\"cells\":[";
            bool first = true;
            for (const Cell &c : slots) {
                for (const std::string &s : c.snaps) {
                    if (!first)
                        out << ",";
                    first = false;
                    out << "\n" << s;
                }
            }
            out << "\n]}\n";
        }
        if (opts.wantTrace()) {
            std::ofstream out(opts.tracePath);
            fatal_if(!out, "cannot write ", opts.tracePath);
            if (opts.traceFormat == obs::TraceFormat::Jsonl) {
                for (std::size_t i = 0; i < slots.size(); ++i) {
                    if (slots[i].log)
                        obs::renderJsonl(*slots[i].log, i, out);
                }
            } else {
                obs::ChromeTraceWriter writer(out);
                for (std::size_t i = 0; i < slots.size(); ++i) {
                    if (slots[i].log)
                        writer.append(*slots[i].log, i);
                }
                writer.finish();
            }
        }
    }

  private:
    struct Cell
    {
        std::unique_ptr<obs::TraceLog> log;
        std::vector<std::string> snaps;
    };

    std::string benchName;
    ObsOptions opts;
    std::vector<Cell> slots;
};

/** One measured run of one daemon under one configuration. */
struct Run
{
    std::unique_ptr<core::IndraSystem> system;
    std::size_t slot = 0;
    std::vector<net::RequestOutcome> outcomes;

    core::ServiceSlot &serviceSlot() { return system->slot(slot); }

    /** Sum of response times over the measured outcomes. */
    double
    totalResponse() const
    {
        double t = 0;
        for (const auto &o : outcomes)
            t += static_cast<double>(o.responseTime());
        return t;
    }

    /** Mean response time over the measured outcomes. */
    double
    meanResponse() const
    {
        return outcomes.empty() ? 0.0
                                : totalResponse() / outcomes.size();
    }
};

/**
 * Boot a system, deploy @p profile, run @p warmup benign requests,
 * reset statistics, then run @p script and return the outcomes. With
 * a non-null @p trace the system's emitters stream structured events
 * into it; warmup events are cleared along with the warmup stats so
 * the trace covers exactly the measured window.
 */
inline Run
runScript(const core::NodeConfig &node, const net::DaemonProfile &profile,
          std::uint64_t warmup,
          const std::vector<net::ServiceRequest> &script,
          obs::TraceLog *trace = nullptr)
{
    Run run;
    run.system = std::make_unique<core::IndraSystem>(node);
    if (trace)
        run.system->attachTraceLog(trace);
    run.system->boot();
    run.slot = run.system->deployService(profile);
    for (const auto &req : net::ClientScript::benign(warmup))
        run.system->processRequest(run.slot, req);
    run.serviceSlot().statGroup->resetAll();
    if (trace)
        trace->clear();
    run.outcomes = run.system->runScript(script, run.slot);
    return run;
}

/** Benign-only convenience wrapper. */
inline Run
runBenign(const core::NodeConfig &node, const net::DaemonProfile &profile,
          std::uint64_t warmup, std::uint64_t measured,
          obs::TraceLog *trace = nullptr)
{
    auto script = net::ClientScript::benign(measured);
    for (auto &r : script)
        r.seq += warmup;
    return runScript(node, profile, warmup, script, trace);
}

/** Print the standard bench header with the Table 4 parameters. */
inline void
printHeader(const std::string &title, const SystemConfig &cfg)
{
    std::cout << "==============================================\n"
              << title << "\n"
              << "==============================================\n";
    cfg.print(std::cout);
    std::cout << "\n";
}

/** Print one row: name + columns, aligned. */
inline void
printRow(const std::string &name, const std::vector<double> &cols,
         int precision = 3)
{
    std::cout << std::left << std::setw(12) << name;
    for (double c : cols) {
        std::cout << std::right << std::setw(14) << std::fixed
                  << std::setprecision(precision) << c;
    }
    std::cout << "\n";
}

/** Print the column header row. */
inline void
printCols(const std::vector<std::string> &names)
{
    std::cout << std::left << std::setw(12) << "daemon";
    for (const auto &n : names)
        std::cout << std::right << std::setw(14) << n;
    std::cout << "\n";
}

} // namespace indra::benchutil

#endif // INDRA_BENCH_UTIL_HH
