/**
 * @file
 * Shared helpers for the experiment-reproduction benches: building
 * systems, running warm measured request batches, and printing
 * paper-style tables.
 */

#ifndef INDRA_BENCH_UTIL_HH
#define INDRA_BENCH_UTIL_HH

#include <cstdlib>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "harness/parallel_sweep.hh"
#include "net/client.hh"
#include "net/daemon_profile.hh"
#include "sim/config_reader.hh"
#include "sim/logging.hh"

namespace indra::benchutil
{

/**
 * Build the bench's ParallelSweep from its command line: honors
 * "--jobs N" / "jobs=N" / INDRA_JOBS (default hardware_concurrency;
 * --jobs 1 reproduces the historical serial loop exactly). Cells run
 * shared-nothing — each builds its own IndraSystem — and results come
 * back in cell order, so the printed tables are bit-identical for any
 * job count.
 */
inline harness::ParallelSweep
sweepFromCli(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return harness::ParallelSweep(parseJobs(args));
}

/**
 * The shared bench command line: every sweep bench registers its
 * flags/options here, gets --help and --jobs for free, and rejects
 * anything unrecognized instead of silently ignoring a typo
 * ("--smkoe" running the full-size sweep is how CI timeouts happen).
 *
 *     BenchCli cli("bench_foo", "what the bench measures");
 *     bool smoke = false;
 *     cli.flag("--smoke", "run the CI-sized subset", &smoke);
 *     auto sweep = cli.parse(argc, argv);
 */
class BenchCli
{
  public:
    BenchCli(std::string prog, std::string summary)
        : progName(std::move(prog)), progSummary(std::move(summary))
    {
    }

    /** Register a boolean flag (present -> *out = true). */
    void
    flag(const std::string &name, const std::string &desc, bool *out)
    {
        flags.push_back(Flag{name, desc, out});
    }

    /** Register a value option ("--name VALUE" or "--name=VALUE"). */
    void
    option(const std::string &name, const std::string &value_name,
           const std::string &desc, std::string *out)
    {
        options.push_back(Option{name, value_name, desc, out});
    }

    /**
     * Parse the command line. Handles --help/-h (print and exit 0)
     * and the --jobs forms, fills the registered flags and options,
     * and dies on anything else.
     */
    harness::ParallelSweep
    parse(int argc, char **argv)
    {
        std::vector<std::string> args(argv + 1, argv + argc);
        unsigned jobs = parseJobs(args); // removes the --jobs forms
        for (auto it = args.begin(); it != args.end();) {
            const std::string &arg = *it;
            if (arg == "--help" || arg == "-h") {
                printHelp(std::cout);
                std::exit(0);
            }
            if (auto *f = findFlag(arg)) {
                *f->out = true;
                it = args.erase(it);
                continue;
            }
            bool matched = false;
            for (Option &o : options) {
                if (arg == o.name) {
                    fatal_if(it + 1 == args.end(), o.name,
                             " needs a value (", o.valueName, ")");
                    *o.out = *(it + 1);
                    it = args.erase(it, it + 2);
                    matched = true;
                    break;
                }
                if (arg.rfind(o.name + "=", 0) == 0) {
                    *o.out = arg.substr(o.name.size() + 1);
                    it = args.erase(it);
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
            fatal(progName, ": unrecognized command-line flag '", arg,
                  "' (try --help)");
        }
        return harness::ParallelSweep(jobs);
    }

  private:
    struct Flag
    {
        std::string name;
        std::string desc;
        bool *out;
    };
    struct Option
    {
        std::string name;
        std::string valueName;
        std::string desc;
        std::string *out;
    };

    Flag *
    findFlag(const std::string &name)
    {
        for (Flag &f : flags) {
            if (f.name == name)
                return &f;
        }
        return nullptr;
    }

    void
    printHelp(std::ostream &os) const
    {
        os << "usage: " << progName << " [options]\n\n"
           << progSummary << "\n\noptions:\n";
        auto line = [&os](const std::string &lhs,
                          const std::string &desc) {
            os << "  " << std::left << std::setw(26) << lhs << desc
               << "\n";
        };
        line("--help", "print this help and exit");
        line("--jobs N",
             "sweep worker threads (default: hardware concurrency; "
             "1 = serial)");
        for (const Flag &f : flags)
            line(f.name, f.desc);
        for (const Option &o : options)
            line(o.name + " " + o.valueName, o.desc);
    }

    std::string progName;
    std::string progSummary;
    std::vector<Flag> flags;
    std::vector<Option> options;
};

/** One measured run of one daemon under one configuration. */
struct Run
{
    std::unique_ptr<core::IndraSystem> system;
    std::size_t slot = 0;
    std::vector<net::RequestOutcome> outcomes;

    core::ServiceSlot &serviceSlot() { return system->slot(slot); }

    /** Sum of response times over the measured outcomes. */
    double
    totalResponse() const
    {
        double t = 0;
        for (const auto &o : outcomes)
            t += static_cast<double>(o.responseTime());
        return t;
    }

    /** Mean response time over the measured outcomes. */
    double
    meanResponse() const
    {
        return outcomes.empty() ? 0.0
                                : totalResponse() / outcomes.size();
    }
};

/**
 * Boot a system, deploy @p profile, run @p warmup benign requests,
 * reset statistics, then run @p script and return the outcomes.
 */
inline Run
runScript(const SystemConfig &cfg, const net::DaemonProfile &profile,
          std::uint64_t warmup,
          const std::vector<net::ServiceRequest> &script)
{
    Run run;
    run.system = std::make_unique<core::IndraSystem>(cfg);
    run.system->boot();
    run.slot = run.system->deployService(profile);
    for (const auto &req : net::ClientScript::benign(warmup))
        run.system->processRequest(run.slot, req);
    run.serviceSlot().statGroup->resetAll();
    run.outcomes = run.system->runScript(script, run.slot);
    return run;
}

/** Benign-only convenience wrapper. */
inline Run
runBenign(const SystemConfig &cfg, const net::DaemonProfile &profile,
          std::uint64_t warmup, std::uint64_t measured)
{
    auto script = net::ClientScript::benign(measured);
    for (auto &r : script)
        r.seq += warmup;
    return runScript(cfg, profile, warmup, script);
}

/** Print the standard bench header with the Table 4 parameters. */
inline void
printHeader(const std::string &title, const SystemConfig &cfg)
{
    std::cout << "==============================================\n"
              << title << "\n"
              << "==============================================\n";
    cfg.print(std::cout);
    std::cout << "\n";
}

/** Print one row: name + columns, aligned. */
inline void
printRow(const std::string &name, const std::vector<double> &cols,
         int precision = 3)
{
    std::cout << std::left << std::setw(12) << name;
    for (double c : cols) {
        std::cout << std::right << std::setw(14) << std::fixed
                  << std::setprecision(precision) << c;
    }
    std::cout << "\n";
}

/** Print the column header row. */
inline void
printCols(const std::vector<std::string> &names)
{
    std::cout << std::left << std::setw(12) << "daemon";
    for (const auto &n : names)
        std::cout << std::right << std::setw(14) << n;
    std::cout << "\n";
}

} // namespace indra::benchutil

#endif // INDRA_BENCH_UTIL_HH
