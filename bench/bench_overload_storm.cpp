/**
 * @file
 * Overload storm: sweep attack-arrival rate x burst length x queue
 * bound x daemon and measure how the resilience layer degrades —
 * goodput instead of collapse, typed sheds instead of unbounded
 * queueing, and a full revival cycle under a persistent storm.
 *
 * Every cell is a pure function of (config, ResilienceConfig,
 * StormPlan, FaultPlan): arrivals, backoff jitter, and fault draws
 * all come from seeded PCG32 streams and cells share nothing, so the
 * table is bit-identical for any --jobs count.
 *
 * Reported per cell:
 *   goodput     served legitimate requests per Mcycle
 *   raw_tput    executed requests (attacks included) per Mcycle
 *   shed_rate   sheds / (sheds + executed)
 *   p50/p99     legit response time percentiles, cycles
 *   t_degr      fraction of the run spent outside Healthy
 *   cyc         completed Healthy->...->Healthy revival cycles
 *   req_rev     executed requests from health departure to revival
 *
 * A queue bound of 0 runs the control: resilience fully disarmed, no
 * guard object, the pre-resilience code path.
 *
 * Usage: bench_overload_storm [--jobs N] [--smoke] [--faults SPEC]
 * --smoke runs a CI-sized subset plus a rejuvenation scenario
 * (macro-corrupt:1.0) and self-checks: goodput monotonically
 * non-increasing in attack rate, nonzero sheds when the bound binds,
 * and at least one full revival cycle.
 */

#include <string>
#include <vector>

#include "bench_util.hh"
#include "faults/fault_plan.hh"
#include "resilience/storm.hh"

using namespace indra;

namespace
{

struct StormCell
{
    std::string label;
    resilience::StormReport rep;
    bool armed = false;
};

struct CellParams
{
    std::string daemon;
    double attackRate = 0;
    std::uint32_t burst = 1;
    std::uint32_t bound = 0;
};

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.physMemBytes = 128ULL * 1024 * 1024;
    // A slower ladder keeps the quarantine stage observable: the
    // health machine must reach Quarantined before the recovery
    // ladder escalates past micro recovery.
    cfg.consecutiveFailureThreshold = 4;
    return cfg;
}

resilience::ResilienceConfig
armedConfig(std::uint32_t bound)
{
    resilience::ResilienceConfig rc;
    rc.queueBound = bound;
    rc.fifoHighWater = 48;
    rc.degradeViolations = 2;
    rc.quarantineFailStreak = 2;
    rc.healServedStreak = 3;
    return rc;
}

resilience::StormPlan
stormPlan(const CellParams &p, std::uint64_t legit_requests,
          bool plant_dormant)
{
    resilience::StormPlan plan;
    plan.seed = 1;
    plan.legitRequests = legit_requests;
    plan.legitRatePerMCycle = 1.0;
    plan.attackRatePerMCycle = p.attackRate;
    plan.burstLen = p.burst;
    plan.attackKind = net::AttackKind::StackSmash;
    plan.plantDormant = plant_dormant;
    plan.deadline = 3000000;
    plan.probePeriod = 50000;
    return plan;
}

StormCell
runCell(const CellParams &p, std::uint64_t legit_requests,
        bool plant_dormant, const faults::FaultPlan &fplan,
        benchutil::ObsCollector &collector, std::size_t cell_idx)
{
    SystemConfig cfg = baseConfig();
    resilience::ResilienceConfig rc;
    if (p.bound != 0)
        rc = armedConfig(p.bound);

    net::DaemonProfile profile = net::daemonByName(p.daemon);
    profile.instrPerRequest = 25000;

    core::IndraSystem sys(core::NodeConfig{cfg, fplan, rc});
    sys.attachTraceLog(collector.traceFor(cell_idx));
    sys.boot();
    std::size_t slot = sys.deployService(profile);

    StormCell cell;
    cell.armed = p.bound != 0;
    cell.label = p.daemon + ":a" + std::to_string(int(p.attackRate)) +
                 ":b" + std::to_string(p.burst) + ":q" +
                 std::to_string(p.bound);
    cell.rep = sys.runStorm(slot, stormPlan(p, legit_requests,
                                            plant_dormant));
    collector.snapshot(cell_idx, cell.label, sys.rootStats());
    return cell;
}

void
printCell(const StormCell &c)
{
    const resilience::StormReport &r = c.rep;
    double degraded = 0;
    if (r.endTick != 0) {
        degraded = 1.0 -
            static_cast<double>(r.timeIn[static_cast<std::size_t>(
                resilience::HealthState::Healthy)]) /
                static_cast<double>(r.endTick);
    }
    double shed_rate =
        r.shedTotal() + r.executed
            ? static_cast<double>(r.shedTotal()) /
                  static_cast<double>(r.shedTotal() + r.executed)
            : 0.0;
    std::cout << std::left << std::setw(20) << c.label << std::right
              << std::setw(10) << std::fixed << std::setprecision(3)
              << r.goodput()
              << std::setw(10) << r.rawThroughput()
              << std::setw(10) << shed_rate
              << std::setw(10) << r.legitP50
              << std::setw(11) << r.legitP99
              << std::setw(8) << std::setprecision(3)
              << (c.armed ? degraded : 0.0)
              << std::setw(5) << r.fullCycles
              << std::setw(9) << r.requestsToRevival << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogVerbosity(0);
    benchutil::BenchCli cli(
        "bench_overload_storm",
        "Graceful degradation under attack storms: admission control, "
        "health state machine, goodput vs raw throughput");
    bool smoke = false;
    std::string fault_spec;
    cli.flag("--smoke",
             "CI-sized subset plus revival scenario, with self-checks",
             &smoke);
    cli.option("--faults", "KIND:RATE[:MAG][,...]",
               "compose an injected-fault plan into every cell",
               &fault_spec);
    auto sweep = cli.parse(argc, argv);

    faults::FaultPlan fplan;
    if (!fault_spec.empty())
        fplan = faults::FaultPlan::parse(fault_spec);

    const std::vector<std::string> daemons =
        smoke ? std::vector<std::string>{"httpd"}
              : std::vector<std::string>{"httpd", "bind"};
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 2.0, 8.0}
              : std::vector<double>{0.0, 1.0, 4.0, 16.0};
    const std::vector<std::uint32_t> bursts =
        smoke ? std::vector<std::uint32_t>{4}
              : std::vector<std::uint32_t>{1, 8};
    const std::vector<std::uint32_t> bounds =
        smoke ? std::vector<std::uint32_t>{6}
              : std::vector<std::uint32_t>{0, 8};
    const std::uint64_t legit_requests = smoke ? 60 : 160;

    benchutil::printHeader(
        "Overload storm: goodput and graceful degradation",
        baseConfig());
    if (!fault_spec.empty())
        std::cout << "fault plan: " << fplan.describe() << "\n\n";
    std::cout << std::left << std::setw(20) << "cell" << std::right
              << std::setw(10) << "goodput"
              << std::setw(10) << "raw_tput"
              << std::setw(10) << "shed_rate"
              << std::setw(10) << "p50"
              << std::setw(11) << "p99"
              << std::setw(8) << "t_degr"
              << std::setw(5) << "cyc"
              << std::setw(9) << "req_rev" << "\n";

    std::size_t n =
        daemons.size() * rates.size() * bursts.size() * bounds.size();
    // One extra cell for the smoke run's revival scenario.
    benchutil::ObsCollector collector("bench_overload_storm",
                                      cli.obs());
    collector.resize(n + (smoke ? 1 : 0));
    auto cells = sweep.run(n, [&](std::size_t i) {
        CellParams p;
        p.daemon = daemons[i % daemons.size()];
        std::size_t rest = i / daemons.size();
        p.bound = bounds[rest % bounds.size()];
        rest /= bounds.size();
        p.burst = bursts[rest % bursts.size()];
        p.attackRate = rates[rest / bursts.size()];
        return runCell(p, legit_requests, false, fplan, collector, i);
    });

    for (const StormCell &c : cells)
        printCell(c);

    if (!smoke) {
        collector.write();
        return 0;
    }

    // ------------------------------------------- the smoke scenario
    // A persistent storm with a dormant plant, against a backup
    // engine whose macro restores are corrupted: probes crash on the
    // surfaced damage while quarantined, the ladder escalates through
    // the failed macro restore to rejuvenation, and the reborn
    // service's first served probe closes the cycle.
    CellParams revival;
    revival.daemon = "httpd";
    revival.attackRate = 8.0;
    revival.burst = 4;
    revival.bound = 6;
    faults::FaultPlan corrupt =
        faults::FaultPlan::parse("macro-corrupt:1.0");
    StormCell rc = runCell(revival, legit_requests, true, corrupt,
                           collector, n);
    std::cout << "\nrevival scenario (dormant plant, "
                 "macro-corrupt:1.0):\n";
    printCell(rc);
    const auto *log_guard = &rc.rep; // full transition data is in rep

    // ------------------------------------------------- self checks
    int failures = 0;
    auto check = [&failures](bool ok, const std::string &what) {
        if (!ok) {
            std::cout << "SMOKE CHECK FAILED: " << what << "\n";
            ++failures;
        }
    };

    // Goodput must not rise as the attack rate rises (same daemon,
    // burst, and bound). Cell index i = rate-major per the unpacking
    // above, so consecutive rate groups are strided.
    std::size_t group = daemons.size() * bounds.size() * bursts.size();
    for (std::size_t g = 0; g < group; ++g) {
        for (std::size_t r = 1; r < rates.size(); ++r) {
            double prev = cells[(r - 1) * group + g].rep.goodput();
            double cur = cells[r * group + g].rep.goodput();
            check(cur <= prev + 1e-9,
                  "goodput rose with attack rate (" +
                      cells[r * group + g].label + ")");
        }
    }

    // The bound must actually shed under the heaviest storm.
    const StormCell &heavy = cells[cells.size() - 1];
    check(heavy.rep.shedTotal() > 0,
          "no sheds despite a bounded queue under max attack rate");

    // The revival scenario must walk the whole state machine.
    check(log_guard->fullCycles >= 1,
          "no full Healthy->Degraded->Quarantined->Rejuvenating->"
          "Healthy cycle in the revival scenario");

    if (failures == 0)
        std::cout << "\nall smoke checks passed\n";
    collector.write();
    return failures == 0 ? 0 : 1;
}
