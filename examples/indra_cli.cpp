/**
 * @file
 * Command-line INDRA simulator: a scriptable driver over the whole
 * framework.
 *
 *   indra_cli [key=value ...]
 *
 * Driver keys:
 *   daemon=httpd          service to deploy (ftpd, httpd, bind,
 *                         sendmail, imap, nfs)
 *   requests=20           requests to serve
 *   warmup=2              unmeasured warm-up requests
 *   attack=stack-smash    attack kind (see --help)
 *   attack_period=5       attack every Nth request (0 = never)
 *   instr=0               override instructions/request (0 = profile)
 *   stats=0               dump the full statistics tree at the end
 *
 * Everything else is a SystemConfig field, e.g.:
 *   checkpointScheme=virtual-checkpoint traceFifoEntries=16
 *   monitorEnabled=false filterCamEntries=64 rngSeed=7
 */

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "net/daemon_profile.hh"
#include "sim/config_reader.hh"
#include "sim/logging.hh"

using namespace indra;

namespace
{

std::string
driverArg(const std::vector<std::string> &args, const std::string &key,
          const std::string &fallback)
{
    for (const auto &arg : args) {
        if (arg.rfind(key + "=", 0) == 0)
            return arg.substr(key.size() + 1);
    }
    return fallback;
}

void
printHelp()
{
    std::cout <<
        "usage: indra_cli [key=value ...]\n\n"
        "driver keys: daemon requests warmup attack attack_period "
        "instr stats\n"
        "attacks: benign stack-smash code-injection func-ptr-hijack "
        "format-string dos-flood dormant\n\n"
        "config keys:\n";
    for (const auto &k : knownSettingKeys())
        std::cout << "  " << k << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const auto &a : args) {
        if (a == "--help" || a == "-h") {
            printHelp();
            return 0;
        }
    }
    setLogVerbosity(1);

    SystemConfig cfg;
    applySettings(cfg, args);

    net::DaemonProfile profile =
        net::daemonByName(driverArg(args, "daemon", "httpd"));
    std::uint64_t instr =
        std::stoull(driverArg(args, "instr", "0"));
    if (instr)
        profile.instrPerRequest = instr;
    std::uint64_t requests =
        std::stoull(driverArg(args, "requests", "20"));
    std::uint64_t warmup = std::stoull(driverArg(args, "warmup", "2"));
    std::string attack_name = driverArg(args, "attack", "benign");
    std::uint64_t period =
        std::stoull(driverArg(args, "attack_period", "0"));
    bool dump_stats = driverArg(args, "stats", "0") == "1";

    cfg.print(std::cout);
    std::cout << "\ndeploying " << profile.name << " ("
              << profile.instrPerRequest << " instr/request)\n\n";

    core::IndraSystem system(cfg);
    system.boot();
    std::size_t slot = system.deployService(profile);

    for (const auto &r : net::ClientScript::benign(warmup))
        system.processRequest(slot, r);
    system.slot(slot).statGroup->resetAll();

    auto script = period
        ? net::ClientScript::periodicAttack(
              requests, net::attackKindFromName(attack_name), period)
        : net::ClientScript::benign(requests);

    std::cout << std::left << std::setw(6) << "req"
              << std::setw(16) << "payload"
              << std::setw(22) << "outcome"
              << std::setw(18) << "violation"
              << std::right << std::setw(14) << "cycles" << "\n";
    auto outcomes = system.runScript(script, slot);
    for (const auto &o : outcomes) {
        std::cout << std::left << std::setw(6) << o.seq
                  << std::setw(16) << net::attackKindName(o.attack)
                  << std::setw(22) << net::requestStatusName(o.status)
                  << std::setw(18) << mon::violationName(o.violation)
                  << std::right << std::setw(14) << o.responseTime()
                  << "\n";
    }

    auto report = net::AvailabilityReport::build(outcomes);
    std::cout << "\navailability " << std::fixed << std::setprecision(3)
              << report.availability() << "  (served " << report.served
              << ", recovered " << report.recovered << ", macro "
              << report.macroRecovered << ", lost " << report.lost
              << ")\nmean benign response "
              << std::setprecision(0) << report.meanBenignResponse
              << " cycles\n";

    if (dump_stats) {
        std::cout << "\n--- statistics ---\n";
        system.rootStats().dump(std::cout);
    }
    return 0;
}
