/**
 * @file
 * Command-line INDRA simulator: a scriptable driver over the whole
 * framework.
 *
 *   indra_cli [key=value ...] [--jobs N]
 *
 * Driver keys:
 *   daemon=httpd          service to deploy (ftpd, httpd, bind,
 *                         sendmail, imap, nfs); a comma-separated
 *                         list or "all" sweeps several daemons and
 *                         prints one summary row per daemon
 *   requests=20           requests to serve
 *   warmup=2              unmeasured warm-up requests
 *   attack=stack-smash    attack kind (see --help)
 *   attack_period=5       attack every Nth request (0 = never)
 *   instr=0               override instructions/request (0 = profile)
 *   stats=0               dump the full statistics tree at the end
 *   jobs=N / --jobs N     workers for a multi-daemon sweep (also
 *                         INDRA_JOBS; default hardware_concurrency,
 *                         1 = serial). Output is identical for any N.
 *
 * Everything else is a NodeConfig setting routed by dotted key
 * (core/node_config.hh): a SystemConfig field, faults.plan, or a
 * dotted adversary./rejuvenation./resilience./domain. ablation key,
 * e.g.:
 *   checkpointScheme=virtual-checkpoint traceFifoEntries=16
 *   faults.plan=macro-corrupt:0.1 resilience.admission=0.75
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/node_config.hh"
#include "core/system.hh"
#include "harness/parallel_sweep.hh"
#include "net/daemon_profile.hh"
#include "obs/stat_sinks.hh"
#include "sim/config_reader.hh"
#include "sim/logging.hh"

using namespace indra;

namespace
{

std::string
driverArg(const std::vector<std::string> &args, const std::string &key,
          const std::string &fallback)
{
    for (const auto &arg : args) {
        if (arg.rfind(key + "=", 0) == 0)
            return arg.substr(key.size() + 1);
    }
    return fallback;
}

void
printHelp()
{
    std::cout <<
        "usage: indra_cli [key=value ...] [--jobs N]\n\n"
        "driver keys: daemon requests warmup attack attack_period "
        "instr stats jobs\n"
        "daemon accepts one name, a comma-separated list, or 'all' "
        "(parallel sweep)\n"
        "attacks: benign stack-smash code-injection func-ptr-hijack "
        "format-string dos-flood dormant\n\n"
        "node keys are routed by dotted prefix: faults.plan=SPEC and\n"
        "adversary./rejuvenation./resilience./domain. ablation keys\n"
        "(see resilience/ablation.hh), plus the config keys:\n";
    for (const auto &k : knownSettingKeys())
        std::cout << "  " << k << "\n";
}

std::vector<std::string>
splitDaemons(const std::string &spec)
{
    if (spec == "all") {
        std::vector<std::string> names;
        for (const auto &p : net::standardDaemons())
            names.push_back(p.name);
        return names;
    }
    std::vector<std::string> names;
    std::istringstream ss(spec);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (!name.empty())
            names.push_back(name);
    }
    fatal_if(names.empty(), "daemon= needs at least one daemon name");
    return names;
}

/** Everything the driver measures for one daemon. */
struct DaemonResult
{
    std::vector<net::RequestOutcome> outcomes;
    std::string statDump;
};

DaemonResult
runOneDaemon(const core::NodeConfig &node, net::DaemonProfile profile,
             std::uint64_t instr, std::uint64_t requests,
             std::uint64_t warmup, const std::string &attack_name,
             std::uint64_t period, bool dump_stats)
{
    if (instr)
        profile.instrPerRequest = instr;

    core::IndraSystem system(node);
    system.boot();
    std::size_t slot = system.deployService(profile);

    for (const auto &r : net::ClientScript::benign(warmup))
        system.processRequest(slot, r);
    system.slot(slot).statGroup->resetAll();

    auto script = period
        ? net::ClientScript::periodicAttack(
              requests, net::attackKindFromName(attack_name), period)
        : net::ClientScript::benign(requests);

    DaemonResult result;
    result.outcomes = system.runScript(script, slot);
    if (dump_stats) {
        std::ostringstream os;
        obs::TextStatSink sink(os);
        system.rootStats().accept(sink);
        result.statDump = os.str();
    }
    return result;
}

void
printOutcomeTable(const std::vector<net::RequestOutcome> &outcomes)
{
    std::cout << std::left << std::setw(6) << "req"
              << std::setw(16) << "payload"
              << std::setw(22) << "outcome"
              << std::setw(18) << "violation"
              << std::right << std::setw(14) << "cycles" << "\n";
    for (const auto &o : outcomes) {
        std::cout << std::left << std::setw(6) << o.seq
                  << std::setw(16) << net::attackKindName(o.attack)
                  << std::setw(22) << net::requestStatusName(o.status)
                  << std::setw(18) << mon::violationName(o.violation)
                  << std::right << std::setw(14) << o.responseTime()
                  << "\n";
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const auto &a : args) {
        if (a == "--help" || a == "-h") {
            printHelp();
            return 0;
        }
    }
    setLogVerbosity(1);

    unsigned jobs = parseJobs(args);
    // One NodeConfig built from the command line: every key=value
    // that is not a driver key goes through the dotted-key router,
    // which fatals on typos instead of guessing.
    static const char *driverKeys[] = {"daemon", "requests", "warmup",
                                       "attack", "attack_period",
                                       "instr", "stats", "jobs"};
    core::NodeConfig node;
    for (const std::string &arg : args) {
        auto eq = arg.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = arg.substr(0, eq);
        bool driver = false;
        for (const char *d : driverKeys)
            driver = driver || key == d;
        if (driver)
            continue;
        core::applyNodeSetting(node, key, arg.substr(eq + 1));
    }

    auto daemons = splitDaemons(driverArg(args, "daemon", "httpd"));
    std::uint64_t instr =
        std::stoull(driverArg(args, "instr", "0"));
    std::uint64_t requests =
        std::stoull(driverArg(args, "requests", "20"));
    std::uint64_t warmup = std::stoull(driverArg(args, "warmup", "2"));
    std::string attack_name = driverArg(args, "attack", "benign");
    std::uint64_t period =
        std::stoull(driverArg(args, "attack_period", "0"));
    bool dump_stats = driverArg(args, "stats", "0") == "1";

    node.system.print(std::cout);

    if (daemons.size() == 1) {
        // Single service: full per-request trace, as always.
        net::DaemonProfile profile = net::daemonByName(daemons[0]);
        std::cout << "\ndeploying " << profile.name << " ("
                  << (instr ? instr : profile.instrPerRequest)
                  << " instr/request)\n\n";
        auto result =
            runOneDaemon(node, profile, instr, requests, warmup,
                         attack_name, period, dump_stats);
        printOutcomeTable(result.outcomes);

        auto report = net::AvailabilityReport::build(result.outcomes);
        std::cout << "\navailability " << std::fixed
                  << std::setprecision(3) << report.availability()
                  << "  (served " << report.served << ", recovered "
                  << report.recovered << ", macro "
                  << report.macroRecovered << ", rejuvenated "
                  << report.rejuvenated << ", lost " << report.lost
                  << ")\nmean benign response "
                  << std::setprecision(0) << report.meanBenignResponse
                  << " cycles\n";

        if (dump_stats) {
            std::cout << "\n--- statistics ---\n" << result.statDump;
        }
        return 0;
    }

    // Daemon sweep: one shared-nothing cell per daemon, summary rows
    // in daemon order regardless of the worker count.
    harness::ParallelSweep sweep(jobs);
    std::cout << "\nsweeping " << daemons.size() << " daemons\n\n";
    auto results = sweep.run(daemons.size(), [&](std::size_t i) {
        return runOneDaemon(node, net::daemonByName(daemons[i]), instr,
                            requests, warmup, attack_name, period,
                            dump_stats);
    });

    std::cout << std::left << std::setw(12) << "daemon"
              << std::right << std::setw(9) << "served"
              << std::setw(11) << "recovered"
              << std::setw(8) << "macro"
              << std::setw(7) << "rejuv"
              << std::setw(7) << "lost"
              << std::setw(14) << "availability"
              << std::setw(18) << "mean_benign_cyc" << "\n";
    for (std::size_t i = 0; i < daemons.size(); ++i) {
        auto report = net::AvailabilityReport::build(results[i].outcomes);
        std::cout << std::left << std::setw(12) << daemons[i]
                  << std::right << std::setw(9) << report.served
                  << std::setw(11) << report.recovered
                  << std::setw(8) << report.macroRecovered
                  << std::setw(7) << report.rejuvenated
                  << std::setw(7) << report.lost
                  << std::fixed << std::setprecision(3)
                  << std::setw(14) << report.availability()
                  << std::setprecision(0) << std::setw(18)
                  << report.meanBenignResponse << "\n";
    }
    if (dump_stats) {
        for (std::size_t i = 0; i < daemons.size(); ++i) {
            std::cout << "\n--- statistics: " << daemons[i]
                      << " ---\n" << results[i].statDump;
        }
    }
    return 0;
}
