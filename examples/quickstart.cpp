/**
 * @file
 * Quickstart: boot an INDRA machine, deploy a web server on a
 * resurrectee core, serve benign traffic, survive a stack-smashing
 * exploit with swift micro recovery, and keep serving.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iomanip>
#include <iostream>

#include "core/system.hh"
#include "net/daemon_profile.hh"
#include "sim/logging.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(1);

    // 1. Configure the machine. Defaults reproduce the paper's
    //    platform (Table 4); we shrink the workload for a quick demo.
    SystemConfig cfg;
    cfg.rngSeed = 42;
    cfg.checkpointScheme = CheckpointScheme::DeltaBackup;
    cfg.monitorEnabled = true;

    // 2. Boot asymmetric: the resurrector carves out its private
    //    memory and releases the resurrectee.
    core::IndraSystem system(core::NodeConfig{cfg});
    system.boot();
    std::cout << "booted asymmetric INDRA machine: "
              << system.resurrectorFrames()
              << " frames private to the resurrector\n";

    // 3. Deploy the web server.
    net::DaemonProfile httpd = net::daemonByName("httpd");
    httpd.instrPerRequest = 120000;  // shortened for the demo
    std::size_t slot = system.deployService(httpd);
    std::cout << "deployed " << httpd.name << " on resurrectee core "
              << system.slot(slot).coreId << "\n\n";

    // 4. Traffic: benign requests with a CAN-2003-0651-style stack
    //    smash as request 4 and a teardrop-style DoS as request 8.
    auto script = net::ClientScript::benign(10);
    script[3].attack = net::AttackKind::StackSmash;
    script[7].attack = net::AttackKind::DosFlood;

    std::cout << std::left << std::setw(6) << "req"
              << std::setw(16) << "payload"
              << std::setw(22) << "outcome"
              << std::setw(18) << "violation"
              << "response cycles\n";
    for (const auto &req : script) {
        net::RequestOutcome out = system.processRequest(slot, req);
        std::cout << std::left << std::setw(6) << out.seq
                  << std::setw(16) << net::attackKindName(out.attack)
                  << std::setw(22) << net::requestStatusName(out.status)
                  << std::setw(18) << mon::violationName(out.violation)
                  << out.responseTime() << "\n";
    }

    // 5. The service survived both attacks without losing a single
    //    benign request.
    auto &mon_ref = *system.slot(slot).monitor;
    std::cout << "\nmonitor processed " << mon_ref.recordsProcessed()
              << " trace records, detected "
              << mon_ref.violationsDetected() << " violations\n";
    std::cout << "service is still up; "
              << system.slot(slot).requestsProcessed
              << " requests served normally\n";
    return 0;
}
