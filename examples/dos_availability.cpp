/**
 * @file
 * Availability under sustained attack: the paper's motivating
 * scenario (Section 2.2). An attacker interleaves DoS exploits with
 * legitimate traffic. A conventional server restarts on every
 * exploit and loses service; INDRA micro-recovers and keeps every
 * well-behaved client happy.
 */

#include <iomanip>
#include <iostream>

#include "core/system.hh"
#include "net/daemon_profile.hh"
#include "sim/logging.hh"

using namespace indra;

namespace
{

struct RunSummary
{
    net::AvailabilityReport report;
    double totalCycles = 0;
};

RunSummary
serveUnderAttack(const SystemConfig &cfg,
                 const net::DaemonProfile &profile,
                 const std::vector<net::ServiceRequest> &script)
{
    core::IndraSystem sys(core::NodeConfig{cfg});
    sys.boot();
    std::size_t slot = sys.deployService(profile);
    auto outcomes = sys.runScript(script, slot);
    RunSummary s;
    s.report = net::AvailabilityReport::build(outcomes);
    s.totalCycles = static_cast<double>(outcomes.back().endTick -
                                        outcomes.front().startTick);
    return s;
}

void
printRow(const char *name, const RunSummary &s)
{
    std::cout << std::left << std::setw(26) << name << std::right
              << std::setw(8) << s.report.served
              << std::setw(12) << s.report.recovered
              << std::setw(8) << s.report.lost
              << std::setw(14) << std::fixed << std::setprecision(3)
              << s.report.availability()
              << std::setw(16) << std::setprecision(0)
              << s.totalCycles << "\n";
}

} // anonymous namespace

int
main()
{
    setLogVerbosity(0);
    std::cout << "Service availability under a repeated remote "
                 "exploit (paper Section 2.2)\n\n";

    net::DaemonProfile profile = net::daemonByName("httpd");
    profile.instrPerRequest = 120000;
    // Every 3rd request is an exploit; 30 requests total.
    auto script = net::ClientScript::randomMix(
        30, 0.33,
        {net::AttackKind::DosFlood, net::AttackKind::StackSmash,
         net::AttackKind::CodeInjection},
        12345);

    std::cout << std::left << std::setw(26) << "configuration"
              << std::right << std::setw(8) << "served"
              << std::setw(12) << "recovered"
              << std::setw(8) << "lost"
              << std::setw(14) << "availability"
              << std::setw(16) << "total cycles" << "\n";

    // Conventional server: no monitor, no backup -> restart on crash.
    SystemConfig conventional;
    conventional.monitorEnabled = false;
    conventional.checkpointScheme = CheckpointScheme::None;
    printRow("conventional (restart)",
             serveUnderAttack(conventional, profile, script));

    // INDRA.
    SystemConfig indra_cfg;
    printRow("INDRA (micro recovery)",
             serveUnderAttack(indra_cfg, profile, script));

    std::cout << "\nINDRA turns every would-be outage into a "
                 "per-request rollback, preserving availability\n"
                 "and finishing the same request mix far sooner than "
                 "the restart-based server\n";

    // Open-loop view: requests arrive on a clock; legitimate clients
    // queue behind whatever the server is busy with. A restart parks
    // the queue for tens of millions of cycles; a micro recovery
    // barely registers.
    std::cout << "\nopen-loop arrivals (mean benign latency incl. "
                 "queueing):\n";
    for (bool protected_run : {false, true}) {
        SystemConfig cfg = protected_run ? indra_cfg : conventional;
        core::IndraSystem sys(core::NodeConfig{cfg});
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        auto warm = sys.runScript(net::ClientScript::benign(2), slot);
        Cycles service = warm[1].responseTime();
        auto outcomes = sys.runOpenLoop(
            slot, script, (service * 3) / 2,
            sys.slot(slot).core->curTick());
        double sum = 0;
        std::uint64_t n = 0;
        for (const auto &o : outcomes) {
            if (o.attack == net::AttackKind::None) {
                sum += static_cast<double>(o.responseTime());
                ++n;
            }
        }
        std::cout << "  " << std::left << std::setw(26)
                  << (protected_run ? "INDRA" : "conventional")
                  << std::fixed << std::setprecision(0) << sum / n
                  << " cycles\n";
    }
    return 0;
}
