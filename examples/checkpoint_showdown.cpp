/**
 * @file
 * Checkpoint showdown: the four memory-backup engines of Table 3 side
 * by side on the same attack-laden workload. Shows why INDRA's delta
 * backup wins — cheap on the backup path AND on the recovery path —
 * while the alternatives are fast on at most one.
 */

#include <iomanip>
#include <iostream>

#include "core/system.hh"
#include "net/daemon_profile.hh"
#include "sim/logging.hh"

using namespace indra;

int
main()
{
    setLogVerbosity(0);
    std::cout << "Checkpoint engine showdown (paper Table 3)\n"
              << "workload: bind DNS, a teardrop-style DoS every 4th "
                 "request\n\n";

    net::DaemonProfile profile = net::daemonByName("bind");
    auto script = net::ClientScript::periodicAttack(
        12, net::AttackKind::DosFlood, 4);

    // Unprotected baseline for normalization.
    SystemConfig base;
    base.monitorEnabled = false;
    base.checkpointScheme = CheckpointScheme::None;
    double base_mean;
    {
        core::IndraSystem sys(core::NodeConfig{base});
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        auto outcomes =
            sys.runScript(net::ClientScript::benign(12), slot);
        double t = 0;
        for (const auto &o : outcomes)
            t += static_cast<double>(o.responseTime());
        base_mean = t / outcomes.size();
    }

    std::cout << std::left << std::setw(22) << "engine"
              << std::right << std::setw(16) << "backup_cyc/req"
              << std::setw(18) << "recovery_cyc/rb"
              << std::setw(12) << "slowdown"
              << std::setw(8) << "lost" << "\n";

    for (CheckpointScheme scheme :
         {CheckpointScheme::DeltaBackup,
          CheckpointScheme::MemoryUpdateLog,
          CheckpointScheme::VirtualCheckpoint,
          CheckpointScheme::SoftwareCheckpoint,
          CheckpointScheme::None}) {
        SystemConfig cfg = base;
        cfg.checkpointScheme = scheme;
        core::IndraSystem sys(core::NodeConfig{cfg});
        sys.boot();
        std::size_t slot = sys.deployService(profile);
        auto outcomes = sys.runScript(script, slot);

        double t = 0;
        std::uint64_t benign_n = 0;
        std::uint64_t lost = 0;
        for (const auto &o : outcomes) {
            if (o.attack == net::AttackKind::None) {
                t += static_cast<double>(o.responseTime());
                ++benign_n;
            }
            if (o.status == net::RequestStatus::Lost)
                ++lost;
        }
        auto &policy = *sys.slot(slot).policy;
        std::cout << std::left << std::setw(22)
                  << checkpointSchemeName(scheme) << std::right
                  << std::fixed << std::setprecision(0) << std::setw(16)
                  << policy.backupCycles() / 12.0 << std::setw(18)
                  << (policy.recoveryCycles() > 0
                          ? policy.recoveryCycles() / 3.0
                          : 0.0)
                  << std::setprecision(2) << std::setw(12)
                  << (t / benign_n) / base_mean
                  << std::setw(8) << lost << "\n";
    }

    std::cout << "\nwith no backup engine the service is LOST on every "
                 "attack and pays a full restart;\ndelta backup "
                 "absorbs the same attacks for ~zero cost\n";
    return 0;
}
