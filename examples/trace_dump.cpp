/**
 * @file
 * Developer tool: dump the MiniIsa instruction stream a daemon's
 * request generator produces, with the monitor-relevant events
 * annotated. Useful for inspecting workload shape and for debugging
 * new exploit payloads.
 *
 *   trace_dump [daemon=httpd] [count=200] [attack=benign] [seed=1]
 */

#include <iostream>
#include <string>
#include <vector>

#include "net/daemon_profile.hh"
#include "net/workload.hh"
#include "sim/logging.hh"

using namespace indra;

namespace
{

std::string
arg(const std::vector<std::string> &args, const std::string &key,
    const std::string &fallback)
{
    for (const auto &a : args) {
        if (a.rfind(key + "=", 0) == 0)
            return a.substr(key.size() + 1);
    }
    return fallback;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    net::DaemonProfile profile =
        net::daemonByName(arg(args, "daemon", "httpd"));
    profile.instrPerRequest = 4000;  // small for inspection
    std::uint64_t count = std::stoull(arg(args, "count", "200"));
    net::AttackKind kind =
        net::attackKindFromName(arg(args, "attack", "benign"));
    std::uint64_t seed = std::stoull(arg(args, "seed", "1"));

    net::ServiceApplication app(profile, seed, 4096);
    net::ServiceRequest req;
    req.seq = 1;
    req.attack = kind;
    auto gen = app.beginRequest(req);

    std::cout << "# " << profile.name << " request, payload "
              << net::attackKindName(kind) << ", seed " << seed
              << "\n";
    cpu::Instruction inst;
    std::uint64_t shown = 0;
    std::uint64_t skipped = 0;
    while (gen.next(inst)) {
        bool interesting = inst.op != cpu::Op::Alu;
        if (shown < count || interesting) {
            if (skipped) {
                std::cout << "  ... " << skipped << " alu ...\n";
                skipped = 0;
            }
            std::cout << inst.toString() << "\n";
            ++shown;
        } else {
            ++skipped;
        }
        if (shown > count * 4)
            break;  // keep the dump bounded for attack streams
    }
    std::cout << "# emitted " << gen.emitted() << " instructions\n";
    return 0;
}
