/**
 * @file
 * Attack gauntlet: run every documented exploit scenario of the
 * paper's Section 4.1 against its daemon and watch INDRA detect,
 * contain, and revive — including the dormant plant that only the
 * hybrid macro recovery can heal. Also demonstrates that memory is
 * byte-exactly restored after each attack.
 */

#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "core/system.hh"
#include "net/exploit.hh"
#include "sim/logging.hh"

using namespace indra;

namespace
{

/** Byte images of every mapped page of the service. */
std::map<Vpn, std::vector<std::uint8_t>>
snapshotService(core::IndraSystem &sys, std::size_t slot)
{
    std::map<Vpn, std::vector<std::uint8_t>> image;
    os::Process &proc = sys.kernel().process(sys.slot(slot).pid);
    for (Vpn vpn : proc.space->mappedPages())
        image[vpn] = sys.physMem().snapshotFrame(
            proc.space->pageInfo(vpn).pfn);
    return image;
}

bool
sameImage(core::IndraSystem &sys, std::size_t slot,
          const std::map<Vpn, std::vector<std::uint8_t>> &before)
{
    auto after = snapshotService(sys, slot);
    return before == after;
}

} // anonymous namespace

int
main()
{
    setLogVerbosity(0);
    std::cout << "INDRA attack-recovery gauntlet "
                 "(paper Section 4.1)\n\n";

    SystemConfig cfg;
    cfg.consecutiveFailureThreshold = 2;

    std::cout << std::left << std::setw(18) << "exploit"
              << std::setw(10) << "daemon"
              << std::setw(18) << "violation"
              << std::setw(22) << "outcome"
              << std::setw(10) << "memory"
              << "service\n";

    for (const auto &scenario : net::documentedExploits()) {
        net::DaemonProfile profile =
            net::daemonByName(scenario.daemon);
        profile.instrPerRequest = 60000;

        core::IndraSystem sys(core::NodeConfig{cfg});
        sys.boot();
        std::size_t slot = sys.deployService(profile);

        // Warm up, then photograph memory right before the attack.
        for (const auto &r : net::ClientScript::benign(2))
            sys.processRequest(slot, r);
        auto before = snapshotService(sys, slot);

        net::ServiceRequest attack;
        attack.seq = 3;
        attack.attack = scenario.kind;
        auto out = sys.processRequest(slot, attack);

        // Complete any lazy rollback, then compare byte-for-byte.
        sys.slot(slot).policy->drainRollback(0);
        bool memory_ok = scenario.kind == net::AttackKind::Dormant
            ? true  // dormant requests complete "successfully"
            : sameImage(sys, slot, before);

        // For the dormant plant, keep serving until the hybrid
        // scheme revives the service from the macro checkpoint.
        std::string service = "up";
        for (std::uint64_t seq = 4; seq <= 12; ++seq) {
            net::ServiceRequest r;
            r.seq = seq;
            auto o = sys.processRequest(slot, r);
            if (o.status == net::RequestStatus::MacroRecovered)
                service = "up (macro revived)";
        }

        std::cout << std::left << std::setw(18) << scenario.id
                  << std::setw(10) << scenario.daemon
                  << std::setw(18)
                  << mon::violationName(out.violation)
                  << std::setw(22)
                  << net::requestStatusName(out.status)
                  << std::setw(10) << (memory_ok ? "exact" : "DIRTY")
                  << service << "\n";
    }

    std::cout << "\nevery scenario: damage revoked, no reboot, "
                 "legitimate clients keep being served\n";
    return 0;
}
